(** Streaming LIA: a sliding window of snapshots with on-demand inference.

    Deployments collect snapshots continuously; this wrapper keeps the
    last [window] measurements, re-learns variances when asked, and runs
    Phase 2 against any fresh snapshot — the operational mode of the
    PlanetLab experiment (learn on the previous [m] snapshots, diagnose
    the next). Learnt variances are cached and invalidated whenever the
    window content changes. *)

type t

val create : r:Linalg.Sparse.t -> window:int -> t
(** Raises [Invalid_argument] when [window < 2]. *)

val observe : t -> Linalg.Vector.t -> unit
(** Appends a snapshot measurement (log path transmission rates), evicting
    the oldest when the window is full. Raises [Invalid_argument] on a
    length mismatch. *)

type observation =
  | Accepted  (** every measurement was a valid log success rate *)
  | Accepted_degraded of { missing : int; corrupt : int }
      (** buffered, but with that many cells neutralized to missing *)
  | Rejected of Quarantine.reason
      (** not buffered: too little of the snapshot was usable *)

val observation_to_string : observation -> string

val observe_checked :
  ?max_missing_fraction:float -> t -> Linalg.Vector.t -> observation
(** Validating ingest: NaN cells are treated as missing, non-finite or
    positive log rates as corrupt (neutralized to missing after being
    counted). A snapshot whose invalid fraction exceeds
    [max_missing_fraction] (default 0.5) — or that is entirely invalid —
    is rejected and never enters the window, so a faulty collector
    cannot push the monitor's variance estimates off a cliff. Accepted
    snapshots invalidate the variance cache exactly like {!observe}.
    Raises [Invalid_argument] on a length mismatch only. *)

val size : t -> int
(** Snapshots currently held. *)

val ready : t -> bool
(** True once the window is full. *)

val window_matrix : t -> Linalg.Matrix.t
(** The current window as a snapshot matrix (oldest row first). *)

val variances : t -> Linalg.Vector.t
(** Learnt link variances over the current window (cached). Raises
    [Failure] when fewer than two snapshots are held. *)

val infer : t -> y_now:Linalg.Vector.t -> Lia.result
(** Phase 2 on [y_now] with the cached variances. *)

val infer_checked :
  ?min_pair_samples:int ->
  ?max_missing_fraction:float ->
  ?max_skipped_pair_fraction:float ->
  t ->
  y_now:Linalg.Vector.t ->
  Lia.checked
(** {!Lia.infer_checked} over the current window: never raises on data
    faults, returning a typed verdict instead; an under-filled window
    (fewer than 2 snapshots) is a [Refused] verdict, not an error. *)

val anomaly_model : t -> Anomaly.model
(** Per-path baseline over the current window. *)
