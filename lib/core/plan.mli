(** Factor-once, solve-many inference plans — the Phase-2 serving path.

    In the paper's deployment model (Sec. 5: continuous monitoring of
    end-to-end flows) the routing matrix [r] is fixed and the learnt
    variances change only when Phase 1 is re-run, while a fresh
    measurement vector [y_now] arrives every snapshot. A plan runs the
    per-deployment work once — variance-ordered rank reduction, dense
    extraction of [R*], and its Householder factorization — and serves
    each measurement with an O(n_p·k) Q-apply plus back-substitution
    ([k] = columns of [R*]), instead of redoing the full
    O(n_c·n_p·k + n_p·k²) pipeline per call as [Lia.infer_with_variances]
    did before it became a wrapper over this module.

    Build-vs-solve complexity, for [n_p] paths, [n_c] links, [k] kept
    columns, [M] snapshots:

    - [make]: O(n_c·n_p·k) rank reduction + O(n_p·k²) factorization, once;
    - [solve]: O(n_p·k) per measurement;
    - [solve_batch]: O(n_p·k·M), one blocked reflector pass for all [M].

    {b Invalidation.} A plan caches decisions derived from [r] and
    [variances] at [make] time: if either changes (new routing, Phase 1
    re-learnt), build a new plan — results from a stale plan answer the
    old deployment. Plans are immutable and safe to share across domains.

    {b Determinism.} [solve] is bit-for-bit identical to the historical
    per-call pipeline, and [solve_batch] is bit-for-bit [solve] on every
    row, for every [jobs] value (property-tested in
    [test/test_plan.ml]). *)

type result = {
  variances : float array;
      (** the plan's variances, echoed per result (Phase 1 output) *)
  transmission : float array;
      (** inferred transmission rate [φ̂ₑ] per link, clamped to (0, 1];
          eliminated links get exactly 1 *)
  loss_rates : float array;  (** [1 - transmission], per link *)
  kept : int array;  (** columns of [R*] *)
  removed : int array;  (** columns approximated as loss-free *)
}

type t
(** An immutable inference plan for one (routing matrix, variances)
    pair. *)

type backend =
  | Dense_qr
      (** materialize the dense [R*] and Householder-factorize it once:
          O(n_p·k²) build, O(n_p·k) per solve — the right choice whenever
          the dense [n_p × k] panel fits comfortably in memory *)
  | Cgls of {
      tol : float;
      max_iter : int option;
      precond : Variance_estimator.precond_spec;
    }
      (** keep [R*] sparse and solve each measurement iteratively
          ({!Linalg.Lsqr.cgls}): O(nnz) build, O(iters · nnz) per solve —
          memory stays O(nnz), which wins once [n_p · k] panels stop
          fitting. [max_iter = None] means the CGLS default ([2k]).
          Iterations feed the [lia_cgls_iterations] counter.

          [precond] is factored once at [make] time and reused by every
          solve: [Pc_none] is the historical raw-CGLS behaviour,
          [Pc_jacobi] equalizes the kept columns' path counts, and
          [Pc_block_jacobi groups] (groups in {e original} column
          numbering, e.g. an AS partition) Cholesky-factors each group's
          [R*ᵀR*] diagonal block independently
          ({!Linalg.Precond.block_jacobi}); groups are intersected with
          the kept columns, so rank reduction and the partition
          compose. *)

val make :
  ?jobs:int -> ?backend:backend ->
  r:Linalg.Sparse.t -> variances:Linalg.Vector.t -> unit -> t
(** [make ~r ~variances ()] runs rank reduction and prepares the solve
    backend (default {!Dense_qr}; the historical behavior). Raises
    [Invalid_argument] when [variances] does not have one entry per
    column of [r]. [jobs] (default [Parallel.Pool.default_jobs ()])
    parallelizes the QR trailing update; the plan is bit-for-bit
    identical for every value. *)

val backend : t -> backend
(** The backend the plan was built with. *)

val solve : t -> Linalg.Vector.t -> result
(** [solve p y_now] infers per-link loss rates for one measurement
    vector (length = paths of the plan's [r]; raises [Invalid_argument]
    otherwise). *)

val solve_batch :
  ?jobs:int -> ?warm_start:bool -> t -> Linalg.Matrix.t -> result array
(** [solve_batch p y] solves every row of the [M × n_p] snapshot matrix
    [y] through the plan in one pool-parallel blocked pass; element [l]
    of the result is bit-for-bit [solve p (Matrix.row y l)].

    [warm_start] (default [false]; {!Cgls} backends only, ignored by
    {!Dense_qr}) chains the snapshots sequentially, starting each CGLS
    run from the previous snapshot's solution: consecutive snapshots of
    one deployment differ by sampling noise, so most iterations vanish.
    The stopping test still references the cold start's [‖Aᵀb‖], so
    every snapshot converges at least as tightly as without warm
    starts — results differ from the cold batch only within solver
    tolerance. *)

val paths : t -> int
(** Rows of the plan's routing matrix ([n_p]). *)

val links : t -> int
(** Columns of the plan's routing matrix ([n_c]). *)

val rank : t -> int
(** Columns of [R*] — the size of the solved system. *)

val kept : t -> int array
(** Column ids of [R*], in descending variance order (fresh copy). *)

val removed : t -> int array
(** Eliminated columns (inferred loss rate 0; fresh copy). *)

val variances : t -> Linalg.Vector.t
(** The variances the plan was built from (fresh copy). *)
