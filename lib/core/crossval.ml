module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Snapshot = Netsim.Snapshot
module Simulator = Netsim.Simulator
module Faults = Netsim.Faults

type grid = {
  families : string list;
  sizes : int list;
  models : string list;
  faults : Faults.t list;
}

let known_families =
  [
    "tree";
    "waxman";
    "ba";
    "hier-td";
    "hier-bu";
    "planetlab";
    "dimes";
    "transit-stub";
  ]

let known_models = [ "llrd1"; "llrd1-calibrated"; "llrd2"; "internet" ]

let default_grid =
  {
    families = [ "tree"; "planetlab" ];
    sizes = [ 15 ];
    models = [ "llrd1-calibrated" ];
    faults = [ Faults.none ];
  }

let parse_grid s =
  let parse_int v =
    match int_of_string_opt v with
    | Some n when n >= 2 -> n
    | Some _ -> failwith (Printf.sprintf "size %s is below the minimum of 2" v)
    | None -> failwith (Printf.sprintf "malformed size %S" v)
  in
  let values sep rest =
    String.split_on_char sep rest
    |> List.map String.trim
    |> List.filter (fun v -> v <> "")
  in
  try
    let g = ref default_grid in
    String.split_on_char ';' s
    |> List.iter (fun clause ->
           let clause = String.trim clause in
           if clause <> "" then
             match String.index_opt clause '=' with
             | None ->
                 failwith
                   (Printf.sprintf "malformed axis %S (expected key=v1,v2,..)"
                      clause)
             | Some i ->
                 let key = String.sub clause 0 i in
                 let rest =
                   String.sub clause (i + 1) (String.length clause - i - 1)
                 in
                 let nonempty vs =
                   if vs = [] then
                     failwith (Printf.sprintf "axis %S has no values" key)
                   else vs
                 in
                 (match key with
                 | "family" ->
                     let fams = nonempty (values ',' rest) in
                     List.iter
                       (fun f ->
                         if not (List.mem f known_families) then
                           failwith
                             (Printf.sprintf
                                "unknown topology family %S (expected one of \
                                 %s)"
                                f
                                (String.concat ", " known_families)))
                       fams;
                     g := { !g with families = fams }
                 | "size" ->
                     g :=
                       {
                         !g with
                         sizes = List.map parse_int (nonempty (values ',' rest));
                       }
                 | "model" ->
                     let models = nonempty (values ',' rest) in
                     List.iter
                       (fun m ->
                         if not (List.mem m known_models) then
                           failwith
                             (Printf.sprintf
                                "unknown loss model %S (expected one of %s)" m
                                (String.concat ", " known_models)))
                       models;
                     g := { !g with models }
                 | "fault" ->
                     (* |-separated alternatives: specs contain commas *)
                     let specs = nonempty (values '|' rest) in
                     let faults =
                       List.map
                         (fun spec ->
                           match Faults.parse spec with
                           | Ok t -> t
                           | Error msg ->
                               failwith
                                 (Printf.sprintf "fault spec %S: %s" spec msg))
                         specs
                     in
                     g := { !g with faults }
                 | other ->
                     failwith
                       (Printf.sprintf
                          "unknown grid axis %S (expected family, size, \
                           model, or fault)"
                          other)))
    |> fun () -> Ok !g
  with Failure msg -> Error msg

type scenario = {
  family : string;
  size : int;
  model : string;
  fault : Faults.t;
  seed : int;
}

let scenarios grid ~seeds =
  List.concat_map
    (fun family ->
      List.concat_map
        (fun size ->
          List.concat_map
            (fun model ->
              List.concat_map
                (fun fault ->
                  List.map
                    (fun seed -> { family; size; model; fault; seed })
                    seeds)
                grid.faults)
            grid.models)
        grid.sizes)
    grid.families

let scenario_label s =
  Printf.sprintf "%s/%d %s fault=%s" s.family s.size s.model
    (Faults.to_string s.fault)

type score = {
  abs_mean : float option;
  abs_max : float option;
  err_factor_median : float option;
  dr : float;
  fpr : float;
}

type outcome =
  | Scored of { score : score; health : string; note : string }
  | Refused of string
  | Skipped of string

type cell = {
  scenario : scenario;
  estimator : string;
  outcome : outcome;
  wall_s : float;
  alloc_words : float;
}

(* --- scenario data ----------------------------------------------------- *)

let model_of_name = function
  | "llrd1" -> Lossmodel.Loss_model.llrd1
  | "llrd1-calibrated" -> Lossmodel.Loss_model.llrd1_calibrated
  | "llrd2" -> Lossmodel.Loss_model.llrd2
  | "internet" -> Lossmodel.Loss_model.internet
  | other -> failwith (Printf.sprintf "unknown loss model %S" other)

let testbed_of rng s =
  let size = s.size in
  match s.family with
  | "tree" -> Topology.Tree_gen.generate rng ~nodes:size ~max_branching:4 ()
  | "waxman" -> Topology.Waxman.generate rng ~nodes:(8 * size) ~hosts:size ()
  | "ba" ->
      Topology.Barabasi_albert.generate rng ~nodes:(8 * size) ~hosts:size ()
  | "hier-td" ->
      Topology.Hierarchical.generate rng ~flavour:Topology.Hierarchical.Top_down
        ~ases:(max 2 (size / 4)) ~routers_per_as:6 ~hosts:size
  | "hier-bu" ->
      Topology.Hierarchical.generate rng
        ~flavour:Topology.Hierarchical.Bottom_up ~ases:(max 2 (size / 4))
        ~routers_per_as:6 ~hosts:size
  | "planetlab" -> Topology.Overlay.planetlab_like rng ~hosts:size ()
  | "dimes" -> Topology.Overlay.dimes_like rng ~hosts:size ()
  | "transit-stub" -> Topology.Transit_stub.generate rng ~hosts:size ()
  | other -> failwith (Printf.sprintf "unknown topology family %S" other)

(* Regenerate a scenario's campaign from its seed: topology, [snapshots]
   Static-dynamics snapshots, fault injection over the whole measurement
   matrix, last surviving (possibly faulted) row as the target. Ground
   truth is the final original snapshot's realized per-link losses —
   under Static dynamics the congested set is constant across the
   window, so detection truth is exact even when row drops shift which
   snapshot the last faulted row came from. *)
let build ~snapshots ~probes s =
  let rng = Nstats.Rng.create s.seed in
  let tb = testbed_of rng s in
  let red = Topology.Testbed.routing tb in
  let r = red.Topology.Routing.matrix in
  let config =
    { (Snapshot.default_config (model_of_name s.model)) with Snapshot.probes }
  in
  let sim = Simulator.run ~dynamics:Simulator.Static rng config r ~count:snapshots in
  let y, _schedule = Faults.apply s.fault sim.Simulator.y in
  let rows = Matrix.rows y in
  if rows < 2 then
    failwith
      (Printf.sprintf "fault injection left %d snapshot(s), need >= 2" rows);
  let y_learn =
    Matrix.init (rows - 1) (Matrix.cols y) (fun l i -> Matrix.get y l i)
  in
  let y_now = Matrix.row y (rows - 1) in
  let input = Measurement.make ~routing:red ~probes ~r ~y_learn ~y_now () in
  let truth = sim.Simulator.snapshots.(snapshots - 1) in
  (input, truth)

(* --- scoring ----------------------------------------------------------- *)

let mean xs =
  if Array.length xs = 0 then Float.nan
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let score_output ~threshold ~(truth : Snapshot.t) (out : Estimator.output) =
  match out.Estimator.verdicts with
  | None ->
      Refused
        (if out.Estimator.note <> "" then out.Estimator.note
         else out.Estimator.health)
  | Some verdicts ->
      let actual_rates = truth.Snapshot.realized in
      let actual = Array.map (fun q -> q > threshold) actual_rates in
      let loc = Metrics.location ~actual ~inferred:verdicts in
      let abs_mean, abs_max, err_factor_median =
        match out.Estimator.loss_rates with
        | None -> (None, None, None)
        | Some rates ->
            let errs =
              Metrics.absolute_errors ~actual:actual_rates ~inferred:rates
            in
            let ef =
              Metrics.error_factors ~actual:actual_rates ~inferred:rates ()
            in
            ( Some (mean errs),
              Some (Metrics.spread errs).Metrics.max,
              Some (Metrics.spread ef).Metrics.median )
      in
      Scored
        {
          score =
            {
              abs_mean;
              abs_max;
              err_factor_median;
              dr = loc.Metrics.dr;
              fpr = loc.Metrics.fpr;
            };
          health = out.Estimator.health;
          note = out.Estimator.note;
        }

(* --- the runner -------------------------------------------------------- *)

let m_cells =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Cross-validation cells evaluated" "lia_crossval_cells_total"

let m_skipped =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Cells skipped for capability mismatch" "lia_crossval_skipped_total"

let m_refused =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Cells the backend refused on data grounds"
    "lia_crossval_refused_total"

let m_cell_seconds =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Wall seconds per estimate call (excluding data generation)"
    "lia_crossval_cell_seconds"

(* [Gc.minor_words ()] reads the allocation pointer; the [quick_stat]
   field is only refreshed at GC events in native code *)
let allocated_words () =
  let g = Gc.quick_stat () in
  Gc.minor_words () +. g.Gc.major_words -. g.Gc.promoted_words

let evaluate ~threshold ~snapshots ~probes (est : Estimator.t) scenario =
  let refused reason =
    {
      scenario;
      estimator = est.Estimator.name;
      outcome = Refused reason;
      wall_s = 0.;
      alloc_words = 0.;
    }
  in
  match
    try Ok (build ~snapshots ~probes scenario) with
    | Invalid_argument msg | Failure msg -> Error ("scenario: " ^ msg)
  with
  | Error msg -> refused msg
  | Ok (input, truth) ->
      let g0 = allocated_words () in
      let t0 = Obs.Clock.now_ns () in
      let res = est.Estimator.estimate ~threshold input in
      let wall_s = Obs.Clock.seconds_since t0 in
      let alloc_words = allocated_words () -. g0 in
      Obs.Metrics.incr m_cells;
      Obs.Metrics.observe m_cell_seconds wall_s;
      let outcome =
        match res with
        | Error reason ->
            Obs.Metrics.incr m_skipped;
            Skipped reason
        | Ok out -> (
            match score_output ~threshold ~truth out with
            | Refused _ as o ->
                Obs.Metrics.incr m_refused;
                o
            | o -> o)
      in
      { scenario; estimator = est.Estimator.name; outcome; wall_s; alloc_words }

let run ?jobs ?(threshold = 0.01) ?(snapshots = 40) ?(probes = 1000)
    ~estimators ~scenarios () =
  if threshold <= 0. || threshold >= 1. then
    invalid_arg "Crossval.run: threshold outside (0, 1)";
  if snapshots < 2 then invalid_arg "Crossval.run: snapshots < 2";
  if probes <= 0 then invalid_arg "Crossval.run: probes <= 0";
  let scen = Array.of_list scenarios in
  let ests = Array.of_list estimators in
  let ne = Array.length ests in
  let n = Array.length scen * ne in
  let cells = Array.make n None in
  (* every cell regenerates its own data from the scenario seed and
     writes only its own slot: bit-identical for every [jobs] value *)
  Parallel.Pool.parallel_for ?jobs ~min_block:1 ~n (fun idx ->
      let si = idx / ne and ei = idx mod ne in
      cells.(idx) <-
        Some (evaluate ~threshold ~snapshots ~probes ests.(ei) scen.(si)));
  Array.map (function Some c -> c | None -> assert false) cells

(* --- rendering --------------------------------------------------------- *)

type agg = {
  mutable seeds : int;  (** scored + refused + skipped = cells seen *)
  mutable statuses : (string * int) list;  (** label -> count, in order *)
  mutable scores : score list;  (** reverse order *)
  mutable notes : string list;  (** distinct, reverse order *)
  mutable wall : float;
  mutable alloc : float;
}

let bump_status agg label =
  if List.mem_assoc label agg.statuses then
    agg.statuses <-
      List.map
        (fun (l, k) -> if l = label then (l, k + 1) else (l, k))
        agg.statuses
  else agg.statuses <- agg.statuses @ [ (label, 1) ]

let add_note agg note =
  if note <> "" && not (List.mem note agg.notes) then
    agg.notes <- note :: agg.notes

let fmt_opt = function None -> "       -" | Some v -> Printf.sprintf "%8.4f" v

let mean_opt xs =
  match List.filter_map (fun x -> x) xs with
  | [] -> None
  | vs -> Some (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))

let render ?(timing = false) cells =
  let buf = Buffer.create 4096 in
  (* group by scenario point (label) then estimator, first-seen order *)
  let groups : (string, (string, agg) Hashtbl.t * string list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let group_order = ref [] in
  Array.iter
    (fun c ->
      let label = scenario_label c.scenario in
      let by_est, est_order =
        match Hashtbl.find_opt groups label with
        | Some g -> g
        | None ->
            let g = (Hashtbl.create 16, ref []) in
            Hashtbl.add groups label g;
            group_order := label :: !group_order;
            g
      in
      let agg =
        match Hashtbl.find_opt by_est c.estimator with
        | Some a -> a
        | None ->
            let a =
              {
                seeds = 0;
                statuses = [];
                scores = [];
                notes = [];
                wall = 0.;
                alloc = 0.;
              }
            in
            Hashtbl.add by_est c.estimator a;
            est_order := c.estimator :: !est_order;
            a
      in
      agg.seeds <- agg.seeds + 1;
      agg.wall <- agg.wall +. c.wall_s;
      agg.alloc <- agg.alloc +. c.alloc_words;
      match c.outcome with
      | Scored { score; health; note } ->
          bump_status agg health;
          agg.scores <- score :: agg.scores;
          add_note agg note
      | Refused reason ->
          bump_status agg "refused";
          add_note agg reason
      | Skipped reason ->
          bump_status agg "skipped";
          add_note agg reason)
    cells;
  List.iter
    (fun label ->
      let by_est, est_order = Hashtbl.find groups label in
      let seeds =
        match !est_order with
        | [] -> 0
        | e :: _ -> (Hashtbl.find by_est e).seeds
      in
      Buffer.add_string buf
        (Printf.sprintf "== %s (%d seed%s) ==\n" label seeds
           (if seeds = 1 then "" else "s"));
      Buffer.add_string buf
        (Printf.sprintf "%-10s  %-20s  %8s  %8s  %8s  %6s  %6s%s  %s\n"
           "estimator" "status" "abs.mean" "abs.max" "errf.med" "dr" "fpr"
           (if timing then Printf.sprintf "  %9s  %9s" "wall.ms" "alloc.kw"
            else "")
           "note");
      List.iter
        (fun est ->
          let agg = Hashtbl.find by_est est in
          let status =
            String.concat ","
              (List.map (fun (l, k) -> Printf.sprintf "%s:%d" l k) agg.statuses)
          in
          let scores = List.rev agg.scores in
          let abs_mean = mean_opt (List.map (fun s -> s.abs_mean) scores) in
          let abs_max = mean_opt (List.map (fun s -> s.abs_max) scores) in
          let errf =
            mean_opt (List.map (fun s -> s.err_factor_median) scores)
          in
          let stat f =
            match scores with
            | [] -> "     -"
            | _ ->
                Printf.sprintf "%6.2f"
                  (List.fold_left (fun acc s -> acc +. f s) 0. scores
                  /. float_of_int (List.length scores))
          in
          let timing_cols =
            if timing then
              Printf.sprintf "  %9.2f  %9.0f"
                (1000. *. agg.wall /. float_of_int (max 1 agg.seeds))
                (agg.alloc /. 1000. /. float_of_int (max 1 agg.seeds))
            else ""
          in
          Buffer.add_string buf
            (Printf.sprintf "%-10s  %-20s  %s  %s  %s  %s  %s%s  %s\n" est
               status (fmt_opt abs_mean) (fmt_opt abs_max) (fmt_opt errf)
               (stat (fun s -> s.dr))
               (stat (fun s -> s.fpr))
               timing_cols
               (String.concat "; " (List.rev agg.notes))))
        (List.rev !est_order);
      Buffer.add_char buf '\n')
    (List.rev !group_order);
  Buffer.contents buf

(* --- JSONL ------------------------------------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "null"

let json_opt = function None -> "null" | Some v -> json_float v

let to_jsonl cells =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun c ->
      let s = c.scenario in
      let common =
        Printf.sprintf
          "\"family\":%s,\"size\":%d,\"model\":%s,\"fault\":%s,\"seed\":%d,\"estimator\":%s"
          (json_string s.family) s.size (json_string s.model)
          (json_string (Faults.to_string s.fault))
          s.seed (json_string c.estimator)
      in
      let body =
        match c.outcome with
        | Scored { score; health; note } ->
            Printf.sprintf
              "\"outcome\":\"scored\",\"health\":%s,\"note\":%s,\"abs_mean\":%s,\"abs_max\":%s,\"err_factor_median\":%s,\"dr\":%s,\"fpr\":%s"
              (json_string health) (json_string note) (json_opt score.abs_mean)
              (json_opt score.abs_max)
              (json_opt score.err_factor_median)
              (json_float score.dr) (json_float score.fpr)
        | Refused reason ->
            Printf.sprintf "\"outcome\":\"refused\",\"reason\":%s"
              (json_string reason)
        | Skipped reason ->
            Printf.sprintf "\"outcome\":\"skipped\",\"reason\":%s"
              (json_string reason)
      in
      Buffer.add_string buf
        (Printf.sprintf "{%s,%s,\"wall_s\":%s,\"alloc_words\":%s}\n" common
           body (json_float c.wall_s) (json_float c.alloc_words)))
    cells;
  Buffer.contents buf
