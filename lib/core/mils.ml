module Sparse = Linalg.Sparse
module Ortho = Linalg.Ortho

type t = { r : Sparse.t; row_space : Ortho.t }

let prepare r =
  let nc = Sparse.cols r in
  let row_space = Ortho.create ~dim:nc in
  for i = 0 to Sparse.rows r - 1 do
    let v = Array.make nc 0. in
    Array.iter (fun j -> v.(j) <- 1.) (Sparse.row r i);
    ignore (Ortho.try_add row_space v)
  done;
  { r; row_space }

let indicator t cols =
  let v = Array.make (Sparse.cols t.r) 0. in
  Array.iter
    (fun j ->
      if j < 0 || j >= Sparse.cols t.r then invalid_arg "Mils: bad column";
      v.(j) <- 1.)
    cols;
  v

let identifiable t cols = Ortho.in_span t.row_space (indicator t cols)

let decompose_path t cols =
  let n = Array.length cols in
  let segments = ref [] in
  let start = ref 0 in
  while !start < n do
    (* shortest identifiable extension of cols.(start ..) *)
    let stop = ref (!start + 1) in
    while
      !stop < n && not (identifiable t (Array.sub cols !start (!stop - !start)))
    do
      incr stop
    done;
    if identifiable t (Array.sub cols !start (!stop - !start)) then begin
      segments := Array.sub cols !start (!stop - !start) :: !segments;
      start := !stop
    end
    else begin
      (* the suffix alone is not identifiable: merge into the previous
         segment (always possible, the full row is identifiable) *)
      let tail = Array.sub cols !start (n - !start) in
      (match !segments with
      | last :: rest -> segments := Array.append last tail :: rest
      | [] -> segments := [ tail ]);
      start := n
    end
  done;
  List.rev !segments

let decompose t =
  Array.init (Sparse.rows t.r) (fun i -> decompose_path t (Sparse.row t.r i))

let segment_loss_rates t ~y_now all_segments =
  if Array.length y_now <> Sparse.rows t.r then
    invalid_arg "Mils.segment_loss_rates: measurement length mismatch";
  (* minimum-norm-ish least squares via regularized normal equations: the
     value of an identifiable functional is solver-independent *)
  let x = Sparse.least_squares ~ridge:1e-9 t.r y_now in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun segments ->
      List.iter
        (fun seg ->
          let key = Array.to_list seg in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            let log_rate = Array.fold_left (fun acc j -> acc +. x.(j)) 0. seg in
            out := (seg, 1. -. exp log_rate) :: !out
          end)
        segments)
    all_segments;
  List.rev !out

type estimate = {
  loss_rates : float array;
  segments : int array list array;
  mean_segment_length : float;
}

let average_length all_segments =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun segments ->
      List.iter
        (fun seg ->
          total := !total + Array.length seg;
          incr count)
        segments)
    all_segments;
  if !count = 0 then 0. else float_of_int !total /. float_of_int !count

let estimate (input : Measurement.t) =
  let r = input.Measurement.r in
  let nc = Sparse.cols r in
  (* identifiability is a property of the measurements actually in hand:
     restrict to the finitely measured target paths before preparing the
     row-space basis (on clean input this is the full matrix) *)
  let valid = Measurement.valid_target input in
  if Array.length valid = 0 then
    invalid_arg "Mils.estimate: no finite target measurements";
  let r_used, y_used =
    if Array.length valid = Sparse.rows r then (r, input.Measurement.y_now)
    else
      ( Linalg.Sparse.select_rows r valid,
        Array.map (fun i -> input.Measurement.y_now.(i)) valid )
  in
  let t = prepare r_used in
  let segments = decompose t in
  let rates = segment_loss_rates t ~y_now:y_used segments in
  (* per-link projection: spread each segment's aggregate evenly in the
     log domain, each link taking the value of its shortest (most
     precise) covering segment; uncovered links read loss-free *)
  let loss_rates = Array.make nc 0. in
  let best_len = Array.make nc max_int in
  List.iter
    (fun (seg, loss) ->
      let k = Array.length seg in
      if k > 0 then begin
        let loss = Float.max 0. (Float.min (1. -. 1e-12) loss) in
        let per = 1. -. ((1. -. loss) ** (1. /. float_of_int k)) in
        Array.iter
          (fun j ->
            if k < best_len.(j) then begin
              best_len.(j) <- k;
              loss_rates.(j) <- per
            end)
          seg
      end)
    rates;
  { loss_rates; segments; mean_segment_length = average_length segments }

