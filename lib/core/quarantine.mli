(** Validation and quarantine of raw measurement snapshots.

    The ingest side of graceful degradation: before any snapshot matrix
    reaches the variance estimator it is scrubbed cell by cell and row
    by row, so that corrupted or incomplete measurements surface as a
    typed {!report} instead of NaN propagating silently into the loss
    estimates.

    {b Cell semantics.} Measurements are log success rates, so a valid
    cell is finite and [<= 0] (success rate in (0,1]). NaN marks a
    {e missing} measurement (a dropped probe). Anything else — positive
    values (success rate > 1), infinities — is {e corrupt}; corrupt
    cells are counted and neutralized to NaN, i.e. downgraded to
    missing, because a corrupted value carries no usable information.

    {b Row semantics.} A snapshot row is quarantined (excluded from the
    output matrix) when every cell is missing, when more than
    [max_missing_fraction] of its cells are missing, or when it is a
    bit-for-bit duplicate of an earlier kept row (replayed snapshots
    would otherwise silently double-weight their sampling period).

    {b Determinism.} [scrub] is sequential and pure: the same input
    yields the same report and the same output bits. On a fully clean
    matrix the output is a bit-for-bit copy of the input and the report
    satisfies {!clean}, which is what keeps the graceful pipeline
    bit-identical to the seed pipeline when no faults are present.

    Counters [quarantine_rows_total], [quarantine_cells_total] and
    [quarantine_duplicates_total] and the gauge
    [ingest_dropped_snapshots] on [Obs.Metrics.default] track scrub
    outcomes for [--metrics] dumps. *)

type reason =
  | All_missing  (** every cell missing or corrupt *)
  | Excess_missing of { missing : int; total : int }
      (** more than the allowed fraction of cells missing *)
  | Duplicate_of of int
      (** bitwise duplicate of the given earlier kept row (original
          numbering) *)

type report = {
  total : int;  (** rows in the input matrix *)
  kept : int array;  (** original indices of surviving rows, ascending *)
  quarantined : (int * reason) list;
      (** quarantined rows, ascending original index *)
  missing_cells : int;  (** NaN cells remaining in kept rows *)
  corrupt_cells : int;
      (** out-of-range cells neutralized to NaN, over all rows *)
}

val reason_to_string : reason -> string

val clean : report -> bool
(** No quarantined rows, no missing cells, no corrupt cells. *)

val summary : report -> string
(** One line, e.g. ["kept 9/12 snapshots (quarantined 3: 1 all-missing, 1
    excess-missing, 1 duplicate); 14 missing cells, 5 corrupt cells"];
    ["clean: kept 12/12 snapshots"] when {!clean}. *)

val scrub :
  ?max_missing_fraction:float -> Linalg.Matrix.t -> Linalg.Matrix.t * report
(** [scrub y] classifies every cell of the [m × n_p] snapshot matrix
    [y] and returns the surviving rows (in input order, corrupt cells
    neutralized to NaN) plus the report. [max_missing_fraction]
    (default [0.5]) is the largest tolerated fraction of missing cells
    per row; rows strictly above it are quarantined. *)

type vector_report = {
  valid : int array;  (** indices of valid entries, ascending *)
  v_missing : int;
  v_corrupt : int;
}

val scrub_vector : Linalg.Vector.t -> Linalg.Vector.t * vector_report
(** Cell-level scrub of a single measurement vector (the inference
    target): corrupt entries are neutralized to NaN and the indices of
    valid entries returned. No row-level policy applies. *)
