(** Iterative maximum-likelihood estimation of link transmission rates
    from first moments — the style of estimator used by the unicast
    packet-train methods the paper compares against (Coates & Nowak,
    Tsang et al., references [12, 29]).

    Each path observation is binomial: [k_i] of [S] probes delivered with
    success probability [∏_{j ∈ path} t_j]. The log-likelihood is
    maximized by cyclic coordinate ascent: the update for link [j] given
    the others is a one-dimensional concave problem solved by bisection
    on the derivative.

    This estimator demonstrates two of the paper's claims. It is
    {e expensive} — every sweep costs O(iterations × n_c × n_p) versus
    LIA's closed-form solve — and the first-moment likelihood is
    {e under-determined}: on rank-deficient routing matrices many rate
    vectors attain the same optimum, so the result depends on the starting
    point and cannot match LIA's per-link accuracy. *)

type result = {
  transmission : float array;  (** estimated per-link transmission rates *)
  log_likelihood : float;
  sweeps : int;  (** coordinate-ascent sweeps performed *)
}

val log_likelihood :
  Linalg.Sparse.t -> delivered:int array -> probes:int -> Linalg.Vector.t -> float
(** Binomial log-likelihood of per-path delivery counts under the given
    link transmission rates. *)

val estimate :
  ?max_sweeps:int ->
  ?tol:float ->
  ?init:float ->
  Linalg.Sparse.t ->
  delivered:int array ->
  probes:int ->
  result
(** [estimate r ~delivered ~probes]: coordinate ascent from the uniform
    start [init] (default 0.99) until the likelihood gain per sweep drops
    below [tol] (default 1e-7) or [max_sweeps] (default 200) is reached.
    Raises [Invalid_argument] on dimension or range errors. A thin
    wrapper over the same pipeline as {!estimate_input} — both shapes run
    bit-for-bit the same ascent. *)

val estimate_input :
  ?max_sweeps:int -> ?tol:float -> ?init:float -> Measurement.t -> result
(** The record-shaped entry: reconstructs the per-path delivery counts
    from the bundle's target snapshot ({!Measurement.delivered}) and runs
    {!estimate} on them. On clean simulated data the reconstruction is
    exact, so this is bit-for-bit
    [estimate input.r ~delivered:(Measurement.delivered input)
    ~probes:input.probes]. *)
