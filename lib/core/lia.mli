(** The Loss Inference Algorithm (LIA) — Section 5.3 of the paper.

    Phase 1 learns the link variances from [m] snapshots by solving the
    second-moment system [Σ̂* = A v]. Phase 2 sorts links by variance,
    eliminates the quietest columns from the routing matrix until it has
    full column rank, solves [Y = R* X*] on the target snapshot, and
    assigns transmission rate 1 (loss 0) to the eliminated links.

    Both entry points are thin wrappers over {!Plan}: they build a
    single-use inference plan and solve one measurement through it. A
    serving loop that diagnoses many snapshots against the same routing
    matrix and variances should call [Plan.make] once and amortize the
    factorization across [Plan.solve] / [Plan.solve_batch] calls. *)

module Plan = Plan
(** The factor-once, solve-many serving path. *)

type result = Plan.result = {
  variances : float array;
      (** learnt loss-variance per link (Phase 1 output) *)
  transmission : float array;
      (** inferred transmission rate [φ̂ₑ] per link, clamped to (0, 1];
          eliminated links get exactly 1 *)
  loss_rates : float array;  (** [1 - transmission], per link *)
  kept : int array;  (** columns of [R*] *)
  removed : int array;  (** columns approximated as loss-free *)
}

(** How both phases solve their linear systems. *)
type solver =
  | Dense
      (** the historical path: streaming normal equations (or the
          [?estimator] method) for Phase 1, dense Householder QR for
          Phase 2. Exact, and fastest while the dense panels fit. *)
  | Cgls of {
      tol : float;  (** CGLS relative tolerance (1e-10 in {!default_cgls}) *)
      max_iter : int option;  (** [None] = the CGLS default cap *)
      sample : (float * int) option;
          (** optional [(fraction, seed)] row-sampling sketch for
              Phase 1 ({!Variance_estimator.matfree_options.sample}) *)
      precond : Variance_estimator.precond_spec;
          (** preconditioner for the Phase-1 augmented solve:
              [Pc_jacobi] (the {!default_cgls} choice — bit-for-bit the
              historical Jacobi-scaled path), [Pc_none], or
              [Pc_block_jacobi groups] for the hierarchical AS-sharded
              path (groups from {!Topology.Partition.group_cols}).
              Block-Jacobi also carries over to the Phase-2 plan
              backend; the other choices leave Phase 2 on the historical
              raw CGLS. *)
    }
      (** matrix-free: Phase 1 runs preconditioned CGLS against the
          implicit augmented operator ({!Augmented.matfree}), Phase 2
          solves through the sparse [R*] ({!Plan.backend}). Memory stays
          O(non-zeros + vectors) — the only path that scales past the
          n_p² wall — and agrees with [Dense] to solver tolerance on
          full-rank systems. *)

val default_cgls : solver
(** [Cgls { tol = 1e-10; max_iter = None; sample = None;
    precond = Pc_jacobi }]. *)

val infer :
  ?estimator:Variance_estimator.options ->
  ?solver:solver ->
  ?jobs:int ->
  r:Linalg.Sparse.t ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  unit ->
  result
(** [infer ~r ~y_learn ~y_now ()]: [y_learn] is the [m × n_p] matrix of
    log path transmission rates of the learning snapshots; [y_now] the
    log measurement of the snapshot to diagnose. Raises
    [Invalid_argument] on dimension mismatches. [solver] (default
    [Dense]) picks the linear-algebra path; under [Cgls] the
    [?estimator]'s [drop_negative]/[clamp] toggles are honored and its
    [method_] is ignored. [jobs] (default
    [Parallel.Pool.default_jobs ()]) runs Phase 1's covariance and
    normal-equation kernels and Phase 2's QR on a domain pool; the
    inferred rates are bit-for-bit independent of its value. *)

val infer_with_variances :
  r:Linalg.Sparse.t ->
  variances:Linalg.Vector.t ->
  y_now:Linalg.Vector.t ->
  result
(** Phase 2 only, for re-using variances learnt once across many target
    snapshots (as the duration analysis of Section 7.2.2 does).
    Equivalent to [Plan.solve (Plan.make ~r ~variances ()) y_now]; when
    calling repeatedly with the same [r] and [variances], build the plan
    once instead. *)

val congested : result -> threshold:float -> bool array
(** Links whose inferred loss rate exceeds the threshold [tl]. *)

(** {1 Health-checked inference}

    The graceful-degradation entry point for production ingest, where
    snapshot files arrive ragged, NaN-laden, duplicated, or short: the
    learning matrix is scrubbed through {!Quarantine}, the variances are
    learnt pairwise-complete with an effective-sample-size guard, and
    the caller receives a typed verdict instead of an exception escape,
    a NaN-laden estimate, or a silent wrong answer. *)

type degradation = {
  quarantine : Quarantine.report;  (** what ingest scrubbing removed *)
  ess : Variance_estimator.ess;  (** pairwise-complete sample accounting *)
  target_missing : int;  (** missing entries excluded from [y_now] *)
  target_corrupt : int;  (** corrupt entries excluded from [y_now] *)
}

type health =
  | Clean
      (** nothing was quarantined or skipped; the result is bit-for-bit
          [infer] on the same inputs *)
  | Degraded of degradation
      (** inference proceeded on the surviving data; the report bounds
          what was lost *)
  | Refused of string
      (** too little usable signal — no estimate is returned, and the
          reason says why *)

type checked = { health : health; result : result option }
(** [result] is [Some] iff [health] is not [Refused]; when present its
    [loss_rates] and [variances] are always finite. *)

val infer_checked :
  ?solver:solver ->
  ?jobs:int ->
  ?min_pair_samples:int ->
  ?max_missing_fraction:float ->
  ?max_skipped_pair_fraction:float ->
  r:Linalg.Sparse.t ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  unit ->
  checked
(** [infer_checked ~r ~y_learn ~y_now ()] is the fault-tolerant [infer]:

    - [y_learn] is scrubbed ({!Quarantine.scrub}, tolerating up to
      [max_missing_fraction] (default 0.5) missing cells per row);
      refused when fewer than 2 rows survive;
    - variances are learnt pairwise-complete with at least
      [min_pair_samples] (default 2) overlapping snapshots per pair;
      refused when more than [max_skipped_pair_fraction] (default 0.5)
      of the linked path pairs had to be skipped;
    - invalid entries of [y_now] are excluded and Phase 2 solves over
      the valid paths only; refused when none remain;
    - any solver failure or non-finite output becomes [Refused], never
      an exception escape.

    [solver] (default [Dense]) picks the linear-algebra path as in
    {!infer}; the quarantine, effective-sample-size accounting, and
    verdict rules are identical under both, so [Cgls] changes estimates
    only within solver tolerance. Raises [Invalid_argument] only for
    dimension mismatches (programming errors, not data faults).
    Deterministic: same inputs give the same verdict and bit-identical
    estimates for every [jobs] value. *)

val health_label : health -> string
(** ["clean"], ["degraded"], or ["refused"]. *)

val health_summary : health -> string
(** One-line rendering including quarantine and sample accounting. *)
