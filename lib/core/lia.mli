(** The Loss Inference Algorithm (LIA) — Section 5.3 of the paper.

    Phase 1 learns the link variances from [m] snapshots by solving the
    second-moment system [Σ̂* = A v]. Phase 2 sorts links by variance,
    eliminates the quietest columns from the routing matrix until it has
    full column rank, solves [Y = R* X*] on the target snapshot, and
    assigns transmission rate 1 (loss 0) to the eliminated links.

    Both entry points are thin wrappers over {!Plan}: they build a
    single-use inference plan and solve one measurement through it. A
    serving loop that diagnoses many snapshots against the same routing
    matrix and variances should call [Plan.make] once and amortize the
    factorization across [Plan.solve] / [Plan.solve_batch] calls. *)

module Plan = Plan
(** The factor-once, solve-many serving path. *)

type result = Plan.result = {
  variances : float array;
      (** learnt loss-variance per link (Phase 1 output) *)
  transmission : float array;
      (** inferred transmission rate [φ̂ₑ] per link, clamped to (0, 1];
          eliminated links get exactly 1 *)
  loss_rates : float array;  (** [1 - transmission], per link *)
  kept : int array;  (** columns of [R*] *)
  removed : int array;  (** columns approximated as loss-free *)
}

val infer :
  ?estimator:Variance_estimator.options ->
  ?jobs:int ->
  r:Linalg.Sparse.t ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  unit ->
  result
(** [infer ~r ~y_learn ~y_now ()]: [y_learn] is the [m × n_p] matrix of
    log path transmission rates of the learning snapshots; [y_now] the
    log measurement of the snapshot to diagnose. Raises
    [Invalid_argument] on dimension mismatches. [jobs] (default
    [Parallel.Pool.default_jobs ()]) runs Phase 1's covariance and
    normal-equation kernels and Phase 2's QR on a domain pool; the
    inferred rates are bit-for-bit independent of its value. *)

val infer_with_variances :
  r:Linalg.Sparse.t ->
  variances:Linalg.Vector.t ->
  y_now:Linalg.Vector.t ->
  result
(** Phase 2 only, for re-using variances learnt once across many target
    snapshots (as the duration analysis of Section 7.2.2 does).
    Equivalent to [Plan.solve (Plan.make ~r ~variances ()) y_now]; when
    calling repeatedly with the same [r] and [variances], build the plan
    once instead. *)

val congested : result -> threshold:float -> bool array
(** Links whose inferred loss rate exceeds the threshold [tl]. *)
