module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Qr = Linalg.Qr

type result = {
  variances : float array;
  transmission : float array;
  loss_rates : float array;
  kept : int array;
  removed : int array;
}

type backend =
  | Dense_qr
  | Cgls of {
      tol : float;
      max_iter : int option;
      precond : Variance_estimator.precond_spec;
    }

(* the factored system behind a plan: a Householder QR of the dense R*,
   or the sparse R* kept implicit behind CGLS (with an optional
   preconditioner factored once at plan-build time) *)
type fact =
  | Direct of Qr.t
  | Iterative of {
      op : Linalg.Lsqr.operator;
      tol : float;
      max_iter : int option;
      precond : Linalg.Precond.t option;
      context : (string * Obs.Field.t) list;
          (* telemetry labels for every solve against this plan *)
    }

type t = {
  np : int;
  nc : int;
  variances : float array;
  kept : int array;
  removed : int array;
  backend : backend;
  fact : fact;
}

let m_build =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per inference-plan build (rank reduction + QR)"
    "plan_build_seconds"

let m_solve =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per snapshot solved through a plan (batch solves \
           contribute their per-snapshot average)"
    "plan_solve_snapshot_seconds"

let g_rank =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Columns kept by the most recent plan build" "plan_rank"

let g_deleted =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Columns eliminated by the most recent plan build"
    "plan_deleted_columns"

(* same counter the matrix-free phase-1 estimator registers; the registry
   returns the existing metric for a same-typed name *)
let m_cgls_iters =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"CGLS iterations run by the matrix-free phase-1 solver"
    "lia_cgls_iterations"

let make ?jobs ?(backend = Dense_qr) ~r ~variances () =
  let nc = Sparse.cols r and np = Sparse.rows r in
  if Array.length variances <> nc then
    invalid_arg "Lia: variance length mismatch";
  Obs.Probe.kernel ~hist:m_build
    ~args:[ ("np", Obs.Field.Int np); ("nc", Obs.Field.Int nc) ]
    "plan.build"
  @@ fun () ->
  let { Rank_reduction.kept; removed } = Rank_reduction.eliminate r variances in
  let fact =
    match backend with
    | Dense_qr -> Direct (Qr.factorize ?jobs (Sparse.dense_cols r kept))
    | Cgls { tol; max_iter; precond } ->
        (* columns renumbered in kept order, so solutions index like the
           QR path's *)
        let r_star = Sparse.select_cols r kept in
        let k = Array.length kept in
        let pc =
          match precond with
          | Variance_estimator.Pc_none -> None
          | Variance_estimator.Pc_jacobi ->
              let counts =
                Array.map float_of_int (Sparse.column_counts r_star)
              in
              Some (Linalg.Precond.jacobi counts)
          | Variance_estimator.Pc_block_jacobi groups ->
              (* groups are in original column numbering; keep only the
                 surviving columns, renumbered to their kept position *)
              let pos = Array.make nc (-1) in
              Array.iteri (fun t j -> pos.(j) <- t) kept;
              let blocks =
                Array.to_list groups
                |> List.filter_map (fun g ->
                       let local =
                         Array.of_list
                           (List.filter_map
                              (fun j ->
                                if pos.(j) >= 0 then Some pos.(j) else None)
                              (Array.to_list g))
                       in
                       if Array.length local = 0 then None
                       else begin
                         Array.sort Int.compare local;
                         Some (local, Sparse.gram_block r_star local)
                       end)
                |> Array.of_list
              in
              Some (Linalg.Precond.block_jacobi ?jobs ~cols:k blocks)
        in
        let pc_name =
          match precond with
          | Variance_estimator.Pc_none -> "none"
          | Variance_estimator.Pc_jacobi -> "jacobi"
          | Variance_estimator.Pc_block_jacobi _ -> "block_jacobi"
        in
        Iterative
          {
            op = Linalg.Lsqr.of_sparse r_star;
            tol;
            max_iter;
            precond = pc;
            context =
              [
                ("phase", Obs.Field.Str "phase2");
                ("precond", Obs.Field.Str pc_name);
              ];
          }
  in
  Obs.Metrics.set g_rank (float_of_int (Array.length kept));
  Obs.Metrics.set g_deleted (float_of_int (Array.length removed));
  { np; nc; variances = Array.copy variances; kept; removed; backend; fact }

let paths p = p.np

let links p = p.nc

let rank p = Array.length p.kept

let kept p = Array.copy p.kept

let removed p = Array.copy p.removed

let variances p = Array.copy p.variances

let backend p = p.backend

let result_of_x p x_star =
  let transmission = Array.make p.nc 1. in
  Array.iteri
    (fun k j ->
      (* x is a log transmission rate; numerical noise can push it above 0 *)
      transmission.(j) <- Float.min 1. (exp x_star.(k)))
    p.kept;
  let loss_rates = Array.map (fun t -> 1. -. t) transmission in
  {
    variances = Array.copy p.variances;
    transmission;
    loss_rates;
    kept = Array.copy p.kept;
    removed = Array.copy p.removed;
  }

let least_squares_x ?x0 p y_now =
  match p.fact with
  | Direct fact -> Qr.least_squares fact y_now
  | Iterative { op; tol; max_iter; precond; context } ->
      let x, stats =
        Linalg.Lsqr.cgls ~tol ?max_iter ?x0 ?precond ~context op y_now
      in
      Obs.Metrics.add m_cgls_iters stats.Linalg.Conjugate_gradient.iterations;
      x

let solve p y_now =
  if Array.length y_now <> p.np then invalid_arg "Lia: measurement length mismatch";
  Obs.Probe.kernel ~hist:m_solve "plan.solve" @@ fun () ->
  result_of_x p (least_squares_x p y_now)

let solve_batch ?jobs ?(warm_start = false) p y =
  if Matrix.cols y <> p.np then invalid_arg "Lia: measurement length mismatch";
  let snapshots = Matrix.rows y in
  Obs.Trace.with_span
    ~args:[ ("snapshots", Obs.Field.Int snapshots) ]
    Obs.Trace.default "plan.solve_batch"
  @@ fun () ->
  let t0 =
    if Obs.Metrics.enabled Obs.Metrics.default then Obs.Clock.now_ns () else 0L
  in
  let out =
    match p.fact with
    | Direct fact ->
        (* one RHS per column: reflectors then sweep all snapshots per pass *)
        let b = Matrix.transpose y in
        let x = Qr.least_squares_batch ?jobs fact b in
        Array.init snapshots (fun l -> result_of_x p (Matrix.col x l))
    | Iterative _ when warm_start ->
        (* consecutive snapshots of one deployment differ little, so
           snapshot k's solution is an excellent start for k+1: the chain
           is sequential by nature (each start needs the previous
           solution) and trades the pool fan-out for iteration savings.
           jobs-invariant trivially — no parallelism to vary. *)
        let out = Array.make snapshots (result_of_x p (Array.make (rank p) 0.)) in
        let prev = ref None in
        for l = 0 to snapshots - 1 do
          let x = least_squares_x ?x0:!prev p (Matrix.row y l) in
          prev := Some x;
          out.(l) <- result_of_x p x
        done;
        out
    | Iterative _ ->
        (* snapshots are independent CGLS runs; each output slot is
           written by exactly one index, so the batch is bit-for-bit
           [solve] per row for every [jobs] value *)
        let out = Array.make snapshots (result_of_x p (Array.make (rank p) 0.)) in
        Parallel.Pool.parallel_for ?jobs ~min_block:1 ~n:snapshots (fun l ->
            out.(l) <- result_of_x p (least_squares_x p (Matrix.row y l)));
        out
  in
  if Obs.Metrics.enabled Obs.Metrics.default && snapshots > 0 then begin
    (* the blocked kernel solves all snapshots in one pass; attribute the
       per-snapshot average to each so the histogram stays per-snapshot *)
    let per = Obs.Clock.seconds_since t0 /. float_of_int snapshots in
    for _ = 1 to snapshots do
      Obs.Metrics.observe m_solve per
    done
  end;
  out
