module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Qr = Linalg.Qr

type result = {
  variances : float array;
  transmission : float array;
  loss_rates : float array;
  kept : int array;
  removed : int array;
}

type t = {
  np : int;
  nc : int;
  variances : float array;
  kept : int array;
  removed : int array;
  fact : Qr.t;
}

let make ?jobs ~r ~variances () =
  let nc = Sparse.cols r and np = Sparse.rows r in
  if Array.length variances <> nc then
    invalid_arg "Lia: variance length mismatch";
  let { Rank_reduction.kept; removed } = Rank_reduction.eliminate r variances in
  let r_star = Sparse.dense_cols r kept in
  let fact = Qr.factorize ?jobs r_star in
  { np; nc; variances = Array.copy variances; kept; removed; fact }

let paths p = p.np

let links p = p.nc

let rank p = Array.length p.kept

let kept p = Array.copy p.kept

let removed p = Array.copy p.removed

let variances p = Array.copy p.variances

let result_of_x p x_star =
  let transmission = Array.make p.nc 1. in
  Array.iteri
    (fun k j ->
      (* x is a log transmission rate; numerical noise can push it above 0 *)
      transmission.(j) <- Float.min 1. (exp x_star.(k)))
    p.kept;
  let loss_rates = Array.map (fun t -> 1. -. t) transmission in
  {
    variances = Array.copy p.variances;
    transmission;
    loss_rates;
    kept = Array.copy p.kept;
    removed = Array.copy p.removed;
  }

let solve p y_now =
  if Array.length y_now <> p.np then invalid_arg "Lia: measurement length mismatch";
  result_of_x p (Qr.least_squares p.fact y_now)

let solve_batch ?jobs p y =
  if Matrix.cols y <> p.np then invalid_arg "Lia: measurement length mismatch";
  (* one RHS per column: reflectors then sweep all snapshots per pass *)
  let b = Matrix.transpose y in
  let x = Qr.least_squares_batch ?jobs p.fact b in
  Array.init (Matrix.rows y) (fun l -> result_of_x p (Matrix.col x l))
