module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Qr = Linalg.Qr

type result = {
  variances : float array;
  transmission : float array;
  loss_rates : float array;
  kept : int array;
  removed : int array;
}

type t = {
  np : int;
  nc : int;
  variances : float array;
  kept : int array;
  removed : int array;
  fact : Qr.t;
}

let m_build =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per inference-plan build (rank reduction + QR)"
    "plan_build_seconds"

let m_solve =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per snapshot solved through a plan (batch solves \
           contribute their per-snapshot average)"
    "plan_solve_snapshot_seconds"

let g_rank =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Columns kept by the most recent plan build" "plan_rank"

let g_deleted =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Columns eliminated by the most recent plan build"
    "plan_deleted_columns"

let make ?jobs ~r ~variances () =
  let nc = Sparse.cols r and np = Sparse.rows r in
  if Array.length variances <> nc then
    invalid_arg "Lia: variance length mismatch";
  Obs.Probe.kernel ~hist:m_build
    ~args:[ ("np", Obs.Field.Int np); ("nc", Obs.Field.Int nc) ]
    "plan.build"
  @@ fun () ->
  let { Rank_reduction.kept; removed } = Rank_reduction.eliminate r variances in
  let r_star = Sparse.dense_cols r kept in
  let fact = Qr.factorize ?jobs r_star in
  Obs.Metrics.set g_rank (float_of_int (Array.length kept));
  Obs.Metrics.set g_deleted (float_of_int (Array.length removed));
  { np; nc; variances = Array.copy variances; kept; removed; fact }

let paths p = p.np

let links p = p.nc

let rank p = Array.length p.kept

let kept p = Array.copy p.kept

let removed p = Array.copy p.removed

let variances p = Array.copy p.variances

let result_of_x p x_star =
  let transmission = Array.make p.nc 1. in
  Array.iteri
    (fun k j ->
      (* x is a log transmission rate; numerical noise can push it above 0 *)
      transmission.(j) <- Float.min 1. (exp x_star.(k)))
    p.kept;
  let loss_rates = Array.map (fun t -> 1. -. t) transmission in
  {
    variances = Array.copy p.variances;
    transmission;
    loss_rates;
    kept = Array.copy p.kept;
    removed = Array.copy p.removed;
  }

let solve p y_now =
  if Array.length y_now <> p.np then invalid_arg "Lia: measurement length mismatch";
  Obs.Probe.kernel ~hist:m_solve "plan.solve" @@ fun () ->
  result_of_x p (Qr.least_squares p.fact y_now)

let solve_batch ?jobs p y =
  if Matrix.cols y <> p.np then invalid_arg "Lia: measurement length mismatch";
  let snapshots = Matrix.rows y in
  Obs.Trace.with_span
    ~args:[ ("snapshots", Obs.Field.Int snapshots) ]
    Obs.Trace.default "plan.solve_batch"
  @@ fun () ->
  let t0 =
    if Obs.Metrics.enabled Obs.Metrics.default then Obs.Clock.now_ns () else 0L
  in
  (* one RHS per column: reflectors then sweep all snapshots per pass *)
  let b = Matrix.transpose y in
  let x = Qr.least_squares_batch ?jobs p.fact b in
  let out = Array.init snapshots (fun l -> result_of_x p (Matrix.col x l)) in
  if Obs.Metrics.enabled Obs.Metrics.default && snapshots > 0 then begin
    (* the blocked kernel solves all snapshots in one pass; attribute the
       per-snapshot average to each so the histogram stays per-snapshot *)
    let per = Obs.Clock.seconds_since t0 /. float_of_int snapshots in
    for _ = 1 to snapshots do
      Obs.Metrics.observe m_solve per
    done
  end;
  out
