module Matrix = Linalg.Matrix

let sigma_star ?jobs y =
  let sigma = Nstats.Descriptive.covariance_matrix ?jobs y in
  let np = Matrix.cols y in
  Array.init (Augmented.row_count ~np) (fun k ->
      let i, j = Augmented.row_pair ~np k in
      Matrix.get sigma i j)

let of_sigma_matrix sigma =
  let np = Matrix.rows sigma in
  if Matrix.cols sigma <> np then
    invalid_arg "Covariance.of_sigma_matrix: not square";
  Array.init (Augmented.row_count ~np) (fun k ->
      let i, j = Augmented.row_pair ~np k in
      Matrix.get sigma i j)
