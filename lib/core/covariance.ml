module Matrix = Linalg.Matrix

let m_sigma_star =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per sigma-star covariance flattening (eq. 7)"
    "lia_sigma_star_seconds"

(* same counter the streaming kernel feeds; registration by name is
   idempotent, which avoids a cyclic module reference *)
let m_pairs =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Path pairs swept by the phase-1 kernels" "lia_pairs_total"

let sigma_star ?jobs y =
  let np = Matrix.cols y in
  Obs.Metrics.add m_pairs (Augmented.row_count ~np);
  Obs.Probe.kernel ~hist:m_sigma_star
    ~args:[ ("np", Obs.Field.Int np); ("m", Obs.Field.Int (Matrix.rows y)) ]
    "covariance.sigma_star"
  @@ fun () ->
  let sigma = Nstats.Descriptive.covariance_matrix ?jobs y in
  Array.init (Augmented.row_count ~np) (fun k ->
      let i, j = Augmented.row_pair ~np k in
      Matrix.get sigma i j)

let of_sigma_matrix sigma =
  let np = Matrix.rows sigma in
  if Matrix.cols sigma <> np then
    invalid_arg "Covariance.of_sigma_matrix: not square";
  Array.init (Augmented.row_count ~np) (fun k ->
      let i, j = Augmented.row_pair ~np k in
      Matrix.get sigma i j)
