module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix

type t = {
  r : Sparse.t;
  routing : Topology.Routing.reduced option;
  y_learn : Matrix.t;
  y_now : Linalg.Vector.t;
  probes : int;
  variances : Linalg.Vector.t option;
}

let make ?routing ?variances ?(probes = 1000) ~r ~y_learn ~y_now () =
  let np = Sparse.rows r in
  if Matrix.cols y_learn <> np then
    invalid_arg "Measurement.make: learning matrix width <> path count";
  if Array.length y_now <> np then
    invalid_arg "Measurement.make: target length <> path count";
  (match variances with
  | Some v when Array.length v <> Sparse.cols r ->
      invalid_arg "Measurement.make: variances length <> link count"
  | _ -> ());
  if probes <= 0 then invalid_arg "Measurement.make: probes <= 0";
  { r; routing; y_learn; y_now; probes; variances }

let of_matrix ?routing ?probes ~r y =
  let rows = Matrix.rows y in
  if rows < 3 then
    invalid_arg "Measurement.of_matrix: need at least 3 snapshots (m >= 2 + 1)";
  let y_learn = Matrix.init (rows - 1) (Matrix.cols y) (fun l i -> Matrix.get y l i) in
  let y_now = Matrix.row y (rows - 1) in
  make ?routing ?probes ~r ~y_learn ~y_now ()

let delivered t =
  let s = float_of_int t.probes in
  Array.map
    (fun y ->
      if not (Float.is_finite y) then 0
      else
        let k = Float.round (s *. exp y) in
        int_of_float (Float.max 0. (Float.min s k)))
    t.y_now

let valid_target t =
  let keep = ref [] in
  for i = Array.length t.y_now - 1 downto 0 do
    if Float.is_finite t.y_now.(i) then keep := i :: !keep
  done;
  Array.of_list !keep
