(** The augmented matrix [A] of Definition 1.

    For a routing matrix [R] with [n_p] rows, [A] has one row per ordered
    pair [(i, j)] with [i <= j]: the element-wise product [Ri∗ ⊗ Rj∗]
    (which is [Ri∗] itself when [i = j], since [R] is 0/1). Lemma 1 turns
    [Σ = R diag(v) Rᵀ] into the linear system [Σ* = A v], and Theorem 1
    shows [A] has full column rank for every valid topology — this is what
    makes the link variances identifiable. *)

val row_index : np:int -> i:int -> j:int -> int
(** Row of the pair [(i, j)], [0 <= i <= j < np], in the canonical
    upper-triangular order: all pairs [(0, j)], then [(1, j)], etc.
    Raises [Invalid_argument] on a bad pair. *)

val row_pair : np:int -> int -> int * int
(** Inverse of {!row_index}. *)

val row_count : np:int -> int
(** [np * (np+1) / 2]. *)

val build : ?jobs:int -> Linalg.Sparse.t -> Linalg.Sparse.t
(** The full augmented matrix, rows in {!row_index} order. For [n_p] paths
    this has [n_p (n_p + 1) / 2] rows; it stays cheap because rows are
    stored sparsely. Row generation is spread over [jobs] domains
    (default [Parallel.Pool.default_jobs ()]); each row is produced by
    exactly one block, so the result is identical for every [jobs]. *)

(** {1 Matrix-free operator}

    [build] stores one sparse row per path pair, which is fine to ~10³
    paths and hopeless at 10⁵ (5·10⁹ rows). The operator below computes
    the products [v ↦ A v] and [w ↦ Aᵀ w] straight from the routing
    matrix: a pair row's support is [Ri∗ ⊗ Rj∗], so each product streams
    over the pair triangle intersecting CSR rows on the fly — O(nnz of
    [R] work per band sweep, zero per-pair allocation, and memory that
    never exceeds the vectors themselves. This is what an iterative
    least-squares solver ({!Linalg.Lsqr.cgls}) needs to solve
    [Σ* = A v] at path counts where even forming [AᵀA] row-by-row is
    the bottleneck. *)

val matfree :
  ?jobs:int -> ?mask:Bytes.t -> Linalg.Sparse.t -> Linalg.Lsqr.operator
(** [matfree r] is the implicit augmented matrix of [r] as an
    {!Linalg.Lsqr.operator} ([rows = row_count], [cols = Sparse.cols r]).

    [mask], when given, must have {!row_count} bytes: rows whose byte is
    ['\000'] are treated as deleted — their product entries are 0 and
    their adjoint contributions are skipped. This is how the estimator
    expresses both the paper's drop-negative-covariance rule and the
    seeded row-sampling sketch without changing the operator shape.

    Both products sweep the pair triangle in cache-blocked 2-D tiles
    ({!Parallel.Chunk.tile_bounds}) over flat [Bigarray] CSR storage
    ({!Linalg.Sparse.to_csr}): the tile's [j]-band rows stay hot in
    cache while [i] walks its band, and no intersection is ever
    materialized. Tiles are distributed over [jobs] domains in blocks
    whose count depends only on the problem size; [apply] writes each
    output entry from exactly one tile and [apply_t] merges per-block
    private accumulators in block index order, so both products are
    bit-for-bit identical for every [jobs] value. *)

val matfree_column_counts :
  ?jobs:int -> ?mask:Bytes.t -> Linalg.Sparse.t -> float array
(** Diagonal of [AᵀA] for the (masked) implicit matrix: entry [e] counts
    the live pair rows whose support contains link [e]. Exact integer
    counts (in floats), one tiled sweep, jobs-invariant. This is the
    Jacobi preconditioner weight for {!Linalg.Lsqr.scaled_columns}. *)

val gram_blocks :
  ?jobs:int ->
  ?mask:Bytes.t ->
  Linalg.Sparse.t ->
  groups:int array array ->
  Linalg.Matrix.t array
(** [gram_blocks r ~groups] builds, for each column group, the dense
    diagonal block [(AᵀA)_{g,g}] of the (masked) implicit augmented
    matrix's Gram — entry [(a, b)] counts the live pair rows whose
    support contains both group columns. Because the pair product [⊗]
    commutes with column restriction, each block is computed from the
    group-restricted routing rows alone, never touching the other
    columns: this is the per-AS factorization unit of the hierarchical
    solve path ({!Linalg.Precond.block_jacobi}). Groups are processed in
    parallel over [jobs] domains, each writing only its own output slot;
    entries are exact integer counts, so results are bit-for-bit
    identical for every [jobs]. [mask] has the same semantics as in
    {!matfree}. *)

val sample_mask : np:int -> fraction:float -> seed:int -> Bytes.t
(** A deterministic row-sampling sketch mask: row [k] is kept iff a
    SplitMix64 hash of [(seed, k)] falls below [fraction]. The same
    [(np, fraction, seed)] always selects the same rows, on every
    platform. [fraction] outside [0, 1] raises [Invalid_argument];
    [fraction = 1.] keeps every row. *)

val update_rows : Linalg.Sparse.t -> rows:int list -> Linalg.Sparse.t -> Linalg.Sparse.t
(** [update_rows r ~rows a] recomputes only the augmented rows involving
    the given routing-matrix rows (after a beacon joins/leaves or a route
    changes), reusing every other row of the previously built [a] — the
    incremental update discussed in Section 5.1. [a] must have been built
    from a routing matrix with the same dimensions as [r]. *)
