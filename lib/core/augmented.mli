(** The augmented matrix [A] of Definition 1.

    For a routing matrix [R] with [n_p] rows, [A] has one row per ordered
    pair [(i, j)] with [i <= j]: the element-wise product [Ri∗ ⊗ Rj∗]
    (which is [Ri∗] itself when [i = j], since [R] is 0/1). Lemma 1 turns
    [Σ = R diag(v) Rᵀ] into the linear system [Σ* = A v], and Theorem 1
    shows [A] has full column rank for every valid topology — this is what
    makes the link variances identifiable. *)

val row_index : np:int -> i:int -> j:int -> int
(** Row of the pair [(i, j)], [0 <= i <= j < np], in the canonical
    upper-triangular order: all pairs [(0, j)], then [(1, j)], etc.
    Raises [Invalid_argument] on a bad pair. *)

val row_pair : np:int -> int -> int * int
(** Inverse of {!row_index}. *)

val row_count : np:int -> int
(** [np * (np+1) / 2]. *)

val build : ?jobs:int -> Linalg.Sparse.t -> Linalg.Sparse.t
(** The full augmented matrix, rows in {!row_index} order. For [n_p] paths
    this has [n_p (n_p + 1) / 2] rows; it stays cheap because rows are
    stored sparsely. Row generation is spread over [jobs] domains
    (default [Parallel.Pool.default_jobs ()]); each row is produced by
    exactly one block, so the result is identical for every [jobs]. *)

val update_rows : Linalg.Sparse.t -> rows:int list -> Linalg.Sparse.t -> Linalg.Sparse.t
(** [update_rows r ~rows a] recomputes only the augmented rows involving
    the given routing-matrix rows (after a beacon joins/leaves or a route
    changes), reusing every other row of the previously built [a] — the
    incremental update discussed in Section 5.1. [a] must have been built
    from a routing matrix with the same dimensions as [r]. *)
