(** The estimator zoo behind one interface.

    Every loss-inference backend in the repository — the paper's LIA in
    both solver flavors, the related-work baselines it compares against
    in Table 1 (MINC, unicast maximum likelihood, MILS, SCFS, CLINK),
    and the Fourier-domain segment-variance estimator of Chen, Cao & Bu
    — is wrapped as a first-class {!t}: a name, a capability record
    saying what inputs and topologies it can consume, and one
    [estimate] function over the shared {!Measurement.t} bundle.

    The registry makes apples-to-apples comparison mechanical: the
    {!Crossval} runner hands every capable backend the {e same}
    simulated (and possibly fault-injected) measurements and scores
    them against the same ground truth. Capability mismatches are
    reported as typed skips ([Error reason]), data faults as a
    ["refused"] health verdict — never as exception escapes. *)

type capabilities = {
  tree_only : bool;
      (** only sound on single-beacon tree topologies (the multicast
          family); general mesh routing is a typed skip *)
  needs_snapshots : bool;
      (** requires a learning window of at least 2 snapshots
          ([y_learn]); a single target measurement is not enough *)
  needs_variances : bool;
      (** requires caller-supplied link variances
          ([Measurement.variances = Some _]) — the factor-once serving
          shape, which cannot learn from data on its own *)
  boolean_verdicts : bool;
      (** a topology-diagnosis method: outputs per-link lossy/not-lossy
          verdicts only, no loss-rate magnitudes *)
}

(** What "recovers ground truth" means for each backend on a clean,
    identifiable tree — the contract the golden consistency suite in
    [test/test_estimators.ml] enforces. *)
type golden_bound =
  | Abs_err of float
      (** mean absolute per-link loss-rate error at most this *)
  | Detection of { min_dr : float; max_fpr : float }
      (** lossy-link detection rate / false-positive rate at the
          paper's 1% threshold *)

type output = {
  loss_rates : float array option;
      (** per-link loss-rate estimates, always finite when present;
          [None] for pure-diagnosis backends *)
  verdicts : bool array option;
      (** per-link lossy verdicts at the requested threshold; derived
          from [loss_rates] for rate estimators, native for diagnosis
          backends. [None] only when the backend refused. *)
  health : string;  (** ["clean"], ["degraded"], or ["refused"] *)
  note : string;  (** short deterministic diagnostic (may be empty) *)
}

type t = {
  name : string;  (** registry key, e.g. ["lia-dense"] *)
  descr : string;  (** one-line provenance *)
  caps : capabilities;
  golden : golden_bound;
  estimate : threshold:float -> Measurement.t -> (output, string) result;
      (** [Error reason] is a capability skip (wrong topology family,
          missing inputs); data-quality failures surface as
          [Ok { health = "refused"; _ }] instead. Deterministic: same
          bundle, same output. *)
}

val check : t -> Measurement.t -> (unit, string) result
(** Capability screen only — the exact [Error] the adapter's [estimate]
    would return without running it: tree derivability for [tree_only]
    backends, learning-window size for [needs_snapshots], supplied
    variances for [needs_variances]. *)

val all : t list
(** The registry, ordered baselines-first: [minc], [em], [mils],
    [scfs], [clink], [fourier], [plan], [lia-dense], [lia-cgls]. *)

val names : string list
(** Registry order. *)

val find : string -> t option
