module Sparse = Linalg.Sparse
module Matrix = Linalg.Matrix
module Multicast = Netsim.Multicast

let subtree_paths (tree : Multicast.tree) =
  let nc = Array.length tree.Multicast.parent in
  let lists = Array.make nc [] in
  Array.iteri
    (fun p leaf -> lists.(leaf) <- p :: lists.(leaf))
    tree.Multicast.leaf_of_path;
  (* bottom-up: children before parents in reverse topological order *)
  let order = tree.Multicast.order in
  for k = Array.length order - 1 downto 0 do
    let v = order.(k) in
    Array.iter
      (fun c -> lists.(v) <- List.rev_append lists.(c) lists.(v))
      tree.Multicast.children.(v)
  done;
  Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) lists

(* population variance over the finite entries; nan with < 2 of them *)
let var_finite xs =
  let n = ref 0 and sum = ref 0. in
  Array.iter
    (fun x ->
      if Float.is_finite x then begin
        incr n;
        sum := !sum +. x
      end)
    xs;
  if !n < 2 then Float.nan
  else begin
    let mean = !sum /. float_of_int !n in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        if Float.is_finite x then begin
          let d = x -. mean in
          acc := !acc +. (d *. d)
        end)
      xs;
    !acc /. float_of_int !n
  end

(* |φ_S(t)|² from the empirical characteristic functions of two paths
   sharing the segment S, over the pairwise-complete snapshots; the
   variance estimate is averaged over the t grid. nan when unusable. *)
let ecf_segment_variance ~t_scale ~grid y1 y2 =
  let n = ref 0 in
  let a = ref [] and b = ref [] in
  Array.iteri
    (fun l x ->
      let y = y2.(l) in
      if Float.is_finite x && Float.is_finite y then begin
        incr n;
        a := x :: !a;
        b := y :: !b
      end)
    y1;
  let m = !n in
  if m < 2 then Float.nan
  else begin
    let a = Array.of_list !a and b = Array.of_list !b in
    let sd v =
      let s = var_finite v in
      if Float.is_finite s then sqrt s else 0.
    in
    let spread = Float.max 1e-9 (0.5 *. (sd a +. sd b)) in
    let mf = float_of_int m in
    let estimates = ref [] in
    for j = 1 to grid do
      let t = t_scale *. float_of_int j /. float_of_int grid /. spread in
      (* φ₁(t), conj φ₂(t), E e^{it(Y₁-Y₂)} in one pass *)
      let p1 = ref Complex.zero and p2c = ref Complex.zero and psi = ref Complex.zero in
      for l = 0 to m - 1 do
        let ta = t *. a.(l) and tb = t *. b.(l) in
        p1 := Complex.add !p1 { Complex.re = cos ta; im = sin ta };
        p2c := Complex.add !p2c { Complex.re = cos tb; im = -.sin tb };
        let d = ta -. tb in
        psi := Complex.add !psi { Complex.re = cos d; im = sin d }
      done;
      let scale z = { Complex.re = z.Complex.re /. mf; im = z.Complex.im /. mf } in
      let p1 = scale !p1 and p2c = scale !p2c and psi = scale !psi in
      if Complex.norm psi > 1e-9 then begin
        let mod2 = Complex.norm (Complex.div (Complex.mul p1 p2c) psi) in
        if mod2 > 0. && Float.is_finite mod2 then begin
          let est = -.log mod2 /. (t *. t) in
          if Float.is_finite est then estimates := est :: !estimates
        end
      end
    done;
    match !estimates with
    | [] -> Float.nan
    | es ->
        List.fold_left ( +. ) 0. es /. float_of_int (List.length es)
  end

let variances ?(t_scale = 1.0) ?(grid = 4) ~tree ~y_learn () =
  let nc = Array.length tree.Multicast.parent in
  let m = Matrix.rows y_learn in
  if m < 2 then invalid_arg "Fourier.variances: need at least 2 snapshots";
  if grid < 1 then invalid_arg "Fourier.variances: grid < 1";
  if t_scale <= 0. then invalid_arg "Fourier.variances: t_scale <= 0";
  let sub = subtree_paths tree in
  let terminating = Array.make nc [] in
  Array.iteri
    (fun p leaf -> terminating.(leaf) <- p :: terminating.(leaf))
    tree.Multicast.leaf_of_path;
  let col p = Array.init m (fun l -> Matrix.get y_learn l p) in
  (* segment variance of root→v, top-down so a fallback can inherit the
     parent's (already resolved) value *)
  let segvar = Array.make nc Float.nan in
  let unresolved = ref 0 in
  Array.iter
    (fun v ->
      let raw =
        match List.sort compare terminating.(v) with
        | p :: _ ->
            (* a path ends here: root→v is that whole path, measured *)
            var_finite (col p)
        | [] ->
            let children = tree.Multicast.children.(v) in
            if Array.length children >= 2 then
              let p1 = sub.(children.(0)).(0) and p2 = sub.(children.(1)).(0) in
              ecf_segment_variance ~t_scale ~grid (col p1) (col p2)
            else
              (* a non-terminating chain node cannot survive routing
                 reduction (its path set equals its child's); treat a
                 malformed tree like a collapsed sample *)
              Float.nan
      in
      if Float.is_finite raw then segvar.(v) <- raw
      else begin
        incr unresolved;
        segvar.(v) <-
          (let p = tree.Multicast.parent.(v) in
           if p < 0 then 0. else segvar.(p))
      end)
    tree.Multicast.order;
  let v =
    Array.init nc (fun k ->
        let above =
          let p = tree.Multicast.parent.(k) in
          if p < 0 then 0. else segvar.(p)
        in
        Float.max 0. (segvar.(k) -. above))
  in
  (v, !unresolved)

type result = { result : Plan.result; unresolved : int }

let infer ?t_scale ?grid ~routing ~y_learn ~y_now () =
  let tree = Multicast.tree_of_routing routing in
  let r = routing.Topology.Routing.matrix in
  if Array.length y_now <> Sparse.rows r then
    invalid_arg "Fourier.infer: target length <> path count";
  let vars, unresolved = variances ?t_scale ?grid ~tree ~y_learn () in
  let valid = ref [] in
  for i = Array.length y_now - 1 downto 0 do
    if Float.is_finite y_now.(i) then valid := i :: !valid
  done;
  let valid = Array.of_list !valid in
  if Array.length valid = 0 then
    invalid_arg "Fourier.infer: no finite target measurements";
  let result =
    if Array.length valid = Array.length y_now then
      Plan.solve (Plan.make ~r ~variances:vars ()) y_now
    else
      let r_sub = Sparse.select_rows r valid in
      let y_sub = Array.map (fun i -> y_now.(i)) valid in
      Plan.solve (Plan.make ~r:r_sub ~variances:vars ()) y_sub
  in
  { result; unresolved }
