(** The shared estimator input record — one call shape for every loss
    estimator in the zoo.

    Every backend behind {!Estimator} (and the record-shaped entry points
    of {!Em_tomography} and {!Mils}) consumes the same bundle: the
    reduced routing matrix, the multi-snapshot learning measurements, the
    target snapshot to diagnose, and the probing budget. Optional context
    rides along for backends that need more than the matrix view: the
    full reduced topology (tree-aware estimators derive the virtual-link
    tree from it) and precomputed Phase-1 variances (so a variance
    learnt once can be served against many targets).

    Measurements are {e log path transmission rates}, exactly the [y]
    convention of {!Lia.infer}: row [l] of [y_learn] is snapshot [l],
    entry [i] is [log φ̂ᵢ]. Missing or corrupt cells are NaN, as produced
    by {!Netsim.Faults} and tolerated by the quarantine-aware paths. *)

type t = {
  r : Linalg.Sparse.t;  (** reduced routing matrix, [n_p × n_c] *)
  routing : Topology.Routing.reduced option;
      (** full reduced topology, when known — required by tree-aware
          backends (MINC, Fourier) *)
  y_learn : Linalg.Matrix.t;  (** [m × n_p] learning snapshots *)
  y_now : Linalg.Vector.t;  (** the target snapshot ([n_p]) *)
  probes : int;  (** probes per snapshot ([S]), for count-based backends *)
  variances : Linalg.Vector.t option;
      (** precomputed per-link variances; [None] = learn from [y_learn] *)
}

val make :
  ?routing:Topology.Routing.reduced ->
  ?variances:Linalg.Vector.t ->
  ?probes:int ->
  r:Linalg.Sparse.t ->
  y_learn:Linalg.Matrix.t ->
  y_now:Linalg.Vector.t ->
  unit ->
  t
(** [make ~r ~y_learn ~y_now ()] validates dimensions ([y_learn] and
    [y_now] must have one column/entry per path of [r]; [variances] one
    entry per column; [probes] positive, default 1000) and packs the
    record. Raises [Invalid_argument] otherwise. *)

val of_matrix :
  ?routing:Topology.Routing.reduced ->
  ?probes:int ->
  r:Linalg.Sparse.t ->
  Linalg.Matrix.t ->
  t
(** Splits a whole campaign matrix the way the CLI does: the last row
    becomes the target snapshot, the rows before it the learning set.
    Raises [Invalid_argument] with fewer than 3 rows (m >= 2 learning +
    1 target). *)

val delivered : t -> int array
(** Per-path delivery counts reconstructed from the target snapshot:
    [round (probes · exp y_now)], clamped to [[0, probes]]; non-finite
    measurements count as 0 delivered. This is the inverse of the
    simulator's [y = log (received / probes)] and exact on clean
    simulated data. *)

val valid_target : t -> int array
(** Indices of the target paths whose measurement is finite, ascending —
    the rows a NaN-intolerant backend should restrict itself to. *)
