(** Phase 1 of LIA: solving [Σ̂* = A v] for the link variances (Sec 5.1).

    Theorem 1 guarantees [A] has full column rank, so with exact
    covariances the solution is unique. With sampled covariances the
    system is inconsistent; we solve it in the least-squares sense, by
    default through the sparse normal equations (the paper uses a dense
    Householder QR, also available here as an ablation). Negative sample
    covariances — pure sampling artifacts, as covariances of path losses
    are non-negative under the model — are dropped by default, as in the
    paper's experiments.

    {b Graceful degradation.} The streaming kernel tolerates missing
    measurements (NaN cells, as produced by {!Quarantine.scrub} or by
    host churn): each pair covariance is computed over the
    pairwise-complete snapshots only, with column means taken over the
    present entries, and pairs with fewer than [min_pair_samples]
    overlapping snapshots are excluded from the system. On a complete
    matrix the guarded path is never entered and the result is
    bit-for-bit the historical estimator. *)

type method_ = Normal_equations | Dense_qr

type options = {
  method_ : method_;
  drop_negative : bool;  (** ignore equations with [Σ̂ᵢᵢ' < 0] (default true) *)
  clamp : bool;  (** clamp inferred variances at 0 (default true) *)
}

val default_options : options
(** [{ method_ = Normal_equations; drop_negative = true; clamp = true }] *)

val solve :
  ?options:options -> ?jobs:int ->
  a:Linalg.Sparse.t -> sigma_star:Linalg.Vector.t -> unit ->
  Linalg.Vector.t
(** The estimated link variance vector [v̂] (length = columns of [a]).
    Raises [Invalid_argument] on a length mismatch and [Failure] if the
    dense QR path meets a rank-deficient system. [jobs] parallelizes the
    normal-equation assembly (ignored by the dense QR path). *)

val estimate :
  ?options:options -> ?jobs:int ->
  r:Linalg.Sparse.t -> y:Linalg.Matrix.t -> unit ->
  Linalg.Vector.t
(** Convenience: builds [A] from [r], [Σ̂*] from the snapshot matrix [y]
    (eq. 7), and solves. With the default [Normal_equations] method this
    dispatches to {!estimate_streaming}, which is mathematically identical
    but never materializes [A]. *)

type ess = {
  pairs_total : int;
      (** path pairs whose augmented row is non-empty (pairs sharing at
          least one link) *)
  pairs_used : int;
      (** of those, pairs with at least [min_pair_samples] overlapping
          snapshots — equal to [pairs_total] on a complete matrix *)
  samples_min : int;
      (** smallest pairwise-complete sample count among the used pairs
          ([m] on a complete matrix; 0 when no pair was usable) *)
}
(** Effective-sample-size accounting for the pairwise-complete
    estimator, the signal [Lia.infer_checked] grades degradation on. *)

val estimate_streaming :
  ?jobs:int ->
  ?drop_negative:bool ->
  ?clamp:bool ->
  ?min_pair_samples:int ->
  r:Linalg.Sparse.t ->
  y:Linalg.Matrix.t ->
  unit ->
  Linalg.Vector.t
(** Solves the normal equations of [Σ̂* = A v] in one pass over the path
    pairs, accumulating [AᵀA] and [AᵀΣ̂*] directly: pairs of paths that
    share no link contribute nothing and are skipped, so memory is
    O(n_c²) regardless of the n_p(n_p+1)/2 virtual rows. This is what
    makes the PlanetLab-scale systems (hundreds of thousands of path
    pairs) solvable in seconds, as reported in Section 6.4.

    The pair triangle is partitioned into balanced blocks processed by
    [jobs] domains (default [Parallel.Pool.default_jobs ()], so 1 on a
    single-core host); per-block partials are merged in a fixed order, so
    the result is bit-for-bit identical for every [jobs] value.

    [min_pair_samples] (default 2) is the effective-sample-size guard of
    the pairwise-complete path: pairs with fewer overlapping snapshots
    are excluded from the normal equations. Raises [Invalid_argument]
    when it is below 2. *)

val estimate_streaming_ess :
  ?jobs:int ->
  ?drop_negative:bool ->
  ?clamp:bool ->
  ?min_pair_samples:int ->
  r:Linalg.Sparse.t ->
  y:Linalg.Matrix.t ->
  unit ->
  Linalg.Vector.t * ess
(** {!estimate_streaming} plus the effective-sample-size report; the
    returned variances are bit-for-bit those of {!estimate_streaming}.
    The [ess] integers are exact and identical for every [jobs] value. *)

(** {1 Matrix-free path}

    {!estimate_streaming} never materializes [A] but still forms the
    dense [n_c × n_c] Gram matrix and, above all, touches every one of
    the n_p(n_p+1)/2 pair rows with a per-row allocation. The matrix-free
    path goes further: the augmented system is solved iteratively
    ({!Linalg.Lsqr.cgls} over {!Augmented.matfree}) with memory bounded
    by a handful of length-[n_c] and length-n_p(n_p+1)/2 vectors, which
    is what survives at path counts where even the streaming Gram
    assembly is the wall. *)

type precond_spec =
  | Pc_none  (** raw CGLS, no scaling *)
  | Pc_jacobi
      (** column-count equalization — the historical default, bit-for-bit
          the pre-preconditioner-hook arithmetic *)
  | Pc_block_jacobi of int array array
      (** hierarchical block-Jacobi over the given column groups (e.g.
          {!Topology.Partition.group_cols} of an AS partition): the
          operator is reordered into doubly-bordered block-diagonal form
          and each group's Gram block is Cholesky-factored independently
          ({!Linalg.Precond.block_jacobi}). The groups must partition the
          columns; the border group rides last. *)

type matfree_options = {
  tol : float;  (** CGLS relative tolerance on [‖Aᵀr‖] (default 1e-10) *)
  max_iter : int option;  (** iteration cap; [None] = [2 · n_c] *)
  mf_drop_negative : bool;  (** as [options.drop_negative] (default true) *)
  mf_clamp : bool;  (** as [options.clamp] (default true) *)
  mf_min_pair_samples : int;  (** as in {!estimate_streaming} (default 2) *)
  sample : (float * int) option;
      (** [Some (fraction, seed)] solves over a deterministic row-sampling
          sketch ({!Augmented.sample_mask}) instead of the full triangle —
          a speed/accuracy dial for very large systems. [None] (default)
          uses every row. *)
  mf_precond : precond_spec;  (** default [Pc_jacobi] *)
}

val default_matfree_options : matfree_options

val estimate_matfree_ess :
  ?options:matfree_options ->
  ?jobs:int ->
  r:Linalg.Sparse.t ->
  y:Linalg.Matrix.t ->
  unit ->
  Linalg.Vector.t * ess * Linalg.Lsqr.stats
(** The matrix-free estimator: builds the right-hand side [Σ̂*] and a row
    mask (drop-negative rule, effective-sample-size guard, optional
    sampling sketch) in one cache-tiled sweep, then runs Jacobi-scaled
    CGLS against the implicit augmented operator. Solves the same
    least-squares problem as the streaming path over the same surviving
    rows, so on full-column-rank systems the minimizer agrees to solver
    tolerance. The [ess] accounting matches {!estimate_streaming_ess}
    pair for pair; the CGLS iteration count is added to the
    [lia_cgls_iterations] counter. Bit-for-bit identical for every
    [jobs] value. Raises [Invalid_argument] as {!estimate_streaming}. *)
