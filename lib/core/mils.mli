(** Minimal Identifiable Link Sequences (Zhao, Chen & Bindel, SIGCOMM 2006
    — reference [36] of the paper).

    First-moment equations cannot determine every individual link loss
    rate, but some {e groups} of consecutive links have an aggregate loss
    rate that is uniquely determined: a linear functional [cᵀx] of the
    link vector is identifiable from [Y = RX] exactly when [c] lies in the
    row space of [R]. A MILS is a minimal consecutive segment of a path
    whose indicator vector is identifiable. The paper contrasts this
    granularity with LIA, whose Theorem 1 shows the {e variances} of those
    same links are individually identifiable.

    Identifiability is tested by projecting segment indicators onto an
    orthonormal basis of the rows of [R]; aggregate rates come from the
    least-squares solution of the first-moment system (unique on
    identifiable functionals). *)

type t

val prepare : Linalg.Sparse.t -> t
(** Precomputes the row-space basis of the routing matrix. *)

val identifiable : t -> int array -> bool
(** [identifiable t cols]: is the sum of [X] over these columns uniquely
    determined by the first-moment equations? *)

val decompose_path : t -> int array -> int array list
(** [decompose_path t cols] partitions a path's column sequence (in
    traversal order, e.g. from {!Topology.Routing.path_vlinks} composed
    with the path's edge order) into its minimal identifiable segments,
    greedily from the front: each returned segment is the shortest
    identifiable extension. A non-identifiable tail is merged into the
    last segment; the whole path is always identifiable because rows of
    [R] are. *)

val decompose : t -> int array list array
(** Every row of the routing matrix, segmented (row support order). *)

val segment_loss_rates :
  t -> y_now:Linalg.Vector.t -> int array list array -> (int array * float) list
(** Aggregate loss rate of every segment, deduplicated by support:
    [1 - exp (segment sum of the least-squares log rates)]. *)

val average_length : int array list array -> float
(** Mean number of links per segment — the granularity measure [36]
    reports (LIA's effective granularity is 1.0 by Theorem 1). *)

(** {1 Record-shaped entry}

    The normalized call shape shared by the estimator zoo: one
    {!Measurement.t} in, per-link rates out. The granular entry points
    above remain the building blocks and are unchanged. *)

type estimate = {
  loss_rates : float array;
      (** per-link projection of the segment aggregates: each segment's
          loss is spread evenly in the log domain over its links, and a
          link covered by several segments takes the value of its
          shortest (finest-granularity) one; uncovered links read 0 *)
  segments : int array list array;  (** per used path, as {!decompose} *)
  mean_segment_length : float;  (** {!average_length} of [segments] *)
}

val estimate : Measurement.t -> estimate
(** [prepare] + {!decompose} + {!segment_loss_rates} on the bundle's
    routing matrix and target snapshot. Non-finite target measurements
    are excluded first (identifiability is then judged on the surviving
    rows); on a clean target this is bit-for-bit the composition of the
    granular entry points on the full matrix. Raises [Invalid_argument]
    when no finite measurement remains. *)
