module Sparse = Linalg.Sparse
module Qr = Linalg.Qr

let m_phase1 =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per phase-1 variance-estimation kernel run"
    "lia_phase1_kernel_seconds"

let m_pairs =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Path pairs swept by the phase-1 kernels" "lia_pairs_total"

type method_ = Normal_equations | Dense_qr

type options = { method_ : method_; drop_negative : bool; clamp : bool }

let default_options =
  { method_ = Normal_equations; drop_negative = true; clamp = true }

let solve ?(options = default_options) ?jobs ~a ~sigma_star () =
  if Array.length sigma_star <> Sparse.rows a then
    invalid_arg "Variance_estimator.solve: rhs length mismatch";
  let a, rhs =
    if options.drop_negative then begin
      let keep = ref [] in
      Array.iteri (fun k s -> if s >= 0. then keep := k :: !keep) sigma_star;
      let idx = Array.of_list (List.rev !keep) in
      (Sparse.select_rows a idx, Array.map (fun k -> sigma_star.(k)) idx)
    end
    else (a, sigma_star)
  in
  let v =
    match options.method_ with
    | Normal_equations -> Sparse.least_squares ?jobs a rhs
    | Dense_qr -> Qr.solve (Sparse.to_dense a) rhs
  in
  if options.clamp then Array.map (fun x -> Float.max 0. x) v else v

let estimate_streaming ?jobs ?(drop_negative = true) ?(clamp = true) ~r ~y () =
  let np = Sparse.rows r and nc = Sparse.cols r in
  let m = Linalg.Matrix.rows y in
  if Linalg.Matrix.cols y <> np then
    invalid_arg "Variance_estimator.estimate_streaming: width mismatch";
  if m < 2 then
    invalid_arg "Variance_estimator.estimate_streaming: need at least 2 snapshots";
  Obs.Metrics.add m_pairs (np * (np + 1) / 2);
  Obs.Probe.kernel ~hist:m_phase1
    ~args:
      [ ("np", Obs.Field.Int np); ("nc", Obs.Field.Int nc); ("m", Obs.Field.Int m) ]
    "variance_estimator.estimate_streaming"
  @@ fun () ->
  (* centered measurement columns, one array per path, for cheap pair
     covariances *)
  let centered = Array.make np [||] in
  Parallel.Pool.parallel_for ?jobs ~min_block:64 ~n:np (fun i ->
      let col = Array.init m (fun l -> Linalg.Matrix.get y l i) in
      let mu = Array.fold_left ( +. ) 0. col /. float_of_int m in
      centered.(i) <- Array.map (fun x -> x -. mu) col);
  let cov i j =
    let ci = centered.(i) and cj = centered.(j) in
    let acc = ref 0. in
    for l = 0 to m - 1 do
      acc := !acc +. (ci.(l) *. cj.(l))
    done;
    !acc /. float_of_int (m - 1)
  in
  (* Accumulate G = AᵀA and b = AᵀΣ̂* over the non-empty augmented rows of
     the pair triangle, cut into blocks whose count depends only on the
     problem size (never on [jobs]). Determinism:
     - G's entries are counts of 1.0 increments — exact in floating
       point — so per-domain accumulators merge to the same bits in any
       order;
     - b sums real covariances, so each block owns a private partial
       vector and the partials are merged in block index order below.
     The same floating-point operations therefore run in the same order
     for every [jobs] value, and the result is bit-for-bit identical. *)
  let npairs = np * (np + 1) / 2 in
  let blocks = Parallel.Chunk.block_count npairs in
  let partial_b = Array.init blocks (fun _ -> Array.make nc 0.) in
  let gbufs = Parallel.Pool.Buffers.create (fun () -> Array.make (nc * nc) 0.) in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let lo, hi = Parallel.Chunk.range ~blocks ~n:npairs bk in
      let b = partial_b.(bk) in
      let g = Parallel.Pool.Buffers.borrow gbufs in
      let last_i = ref (-1) in
      let ri = ref [||] in
      Parallel.Chunk.iter_pairs ~np ~lo ~hi (fun _ i j ->
          if i <> !last_i then begin
            last_i := i;
            ri := Sparse.row r i
          end;
          let row =
            if i = j then !ri else Sparse.row_product !ri (Sparse.row r j)
          in
          if Array.length row > 0 then begin
            let s = cov i j in
            if s >= 0. || not drop_negative then begin
              let len = Array.length row in
              for a = 0 to len - 1 do
                let ja = row.(a) in
                b.(ja) <- b.(ja) +. s;
                let base = ja * nc in
                for c = 0 to len - 1 do
                  let k = base + row.(c) in
                  g.(k) <- g.(k) +. 1.
                done
              done
            end
          end);
      Parallel.Pool.Buffers.return gbufs g);
  let g = Array.make (nc * nc) 0. in
  List.iter
    (fun p ->
      for k = 0 to (nc * nc) - 1 do
        g.(k) <- g.(k) +. p.(k)
      done)
    (Parallel.Pool.Buffers.all gbufs);
  let b = Array.make nc 0. in
  Array.iter
    (fun p ->
      for j = 0 to nc - 1 do
        b.(j) <- b.(j) +. p.(j)
      done)
    partial_b;
  let gm = Linalg.Matrix.init nc nc (fun i j -> g.((i * nc) + j)) in
  let f = Linalg.Cholesky.factorize_regularized gm in
  let v = Linalg.Cholesky.solve_vec f b in
  if clamp then Array.map (fun x -> Float.max 0. x) v else v

let estimate ?(options = default_options) ?jobs ~r ~y () =
  match options.method_ with
  | Normal_equations ->
      estimate_streaming ?jobs ~drop_negative:options.drop_negative
        ~clamp:options.clamp ~r ~y ()
  | Dense_qr ->
      let a = Augmented.build ?jobs r in
      let sigma_star = Covariance.sigma_star ?jobs y in
      solve ~options ?jobs ~a ~sigma_star ()
