module Sparse = Linalg.Sparse
module Qr = Linalg.Qr

let m_phase1 =
  Obs.Metrics.histogram Obs.Metrics.default
    ~help:"Seconds per phase-1 variance-estimation kernel run"
    "lia_phase1_kernel_seconds"

let m_pairs =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Path pairs swept by the phase-1 kernels" "lia_pairs_total"

let m_pairs_skipped =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"Path pairs skipped for lack of overlapping snapshots"
    "lia_pairs_skipped_total"

let g_samples_min =
  Obs.Metrics.gauge Obs.Metrics.default
    ~help:"Smallest pairwise-complete sample count used by the last phase-1 run"
    "lia_effective_samples_min"

let m_cgls_iters =
  Obs.Metrics.counter Obs.Metrics.default
    ~help:"CGLS iterations run by the matrix-free phase-1 solver"
    "lia_cgls_iterations"

type method_ = Normal_equations | Dense_qr

type options = { method_ : method_; drop_negative : bool; clamp : bool }

type ess = { pairs_total : int; pairs_used : int; samples_min : int }

type precond_spec = Pc_none | Pc_jacobi | Pc_block_jacobi of int array array

type matfree_options = {
  tol : float;
  max_iter : int option;
  mf_drop_negative : bool;
  mf_clamp : bool;
  mf_min_pair_samples : int;
  sample : (float * int) option;
  mf_precond : precond_spec;
}

let default_matfree_options =
  {
    tol = 1e-10;
    max_iter = None;
    mf_drop_negative = true;
    mf_clamp = true;
    mf_min_pair_samples = 2;
    sample = None;
    mf_precond = Pc_jacobi;
  }

let default_options =
  { method_ = Normal_equations; drop_negative = true; clamp = true }

let solve ?(options = default_options) ?jobs ~a ~sigma_star () =
  if Array.length sigma_star <> Sparse.rows a then
    invalid_arg "Variance_estimator.solve: rhs length mismatch";
  let a, rhs =
    if options.drop_negative then begin
      let keep = ref [] in
      Array.iteri (fun k s -> if s >= 0. then keep := k :: !keep) sigma_star;
      let idx = Array.of_list (List.rev !keep) in
      (Sparse.select_rows a idx, Array.map (fun k -> sigma_star.(k)) idx)
    end
    else (a, sigma_star)
  in
  let v =
    match options.method_ with
    | Normal_equations -> Sparse.least_squares ?jobs a rhs
    | Dense_qr -> Qr.solve (Sparse.to_dense a) rhs
  in
  if options.clamp then Array.map (fun x -> Float.max 0. x) v else v

(* Centered measurement columns, one array per path, for cheap pair
   covariances. Missing measurements (NaN) survive centering as NaN and
   are excluded pairwise in [pair_cov]; a column with no missing cells
   takes the exact historical code path, so a complete matrix is
   estimated with bit-for-bit the same operations as before the
   fault-tolerance work. Shared by the streaming and matrix-free
   estimators so both see the very same covariances. *)
let center_columns ?jobs ~np ~m y =
  let centered = Array.make np [||] in
  let has_missing = Array.make np false in
  Parallel.Pool.parallel_for ?jobs ~min_block:64 ~n:np (fun i ->
      let col = Array.init m (fun l -> Linalg.Matrix.get y l i) in
      let holes = Array.exists Float.is_nan col in
      has_missing.(i) <- holes;
      let mu =
        if not holes then Array.fold_left ( +. ) 0. col /. float_of_int m
        else begin
          let sum = ref 0. and n = ref 0 in
          Array.iter
            (fun x ->
              if not (Float.is_nan x) then begin
                sum := !sum +. x;
                incr n
              end)
            col;
          if !n = 0 then Float.nan else !sum /. float_of_int !n
        end
      in
      centered.(i) <- Array.map (fun x -> x -. mu) col);
  (centered, has_missing)

(* pairwise-complete covariance: value plus effective sample count *)
let pair_cov ~m centered has_missing i j =
  let ci = centered.(i) and cj = centered.(j) in
  if not (has_missing.(i) || has_missing.(j)) then begin
    let acc = ref 0. in
    for l = 0 to m - 1 do
      acc := !acc +. (ci.(l) *. cj.(l))
    done;
    (!acc /. float_of_int (m - 1), m)
  end
  else begin
    let acc = ref 0. and n = ref 0 in
    for l = 0 to m - 1 do
      let a = ci.(l) and b = cj.(l) in
      if not (Float.is_nan a || Float.is_nan b) then begin
        acc := !acc +. (a *. b);
        incr n
      end
    done;
    if !n < 2 then (Float.nan, !n) else (!acc /. float_of_int (!n - 1), !n)
  end

let estimate_streaming_ess ?jobs ?(drop_negative = true) ?(clamp = true)
    ?(min_pair_samples = 2) ~r ~y () =
  let np = Sparse.rows r and nc = Sparse.cols r in
  let m = Linalg.Matrix.rows y in
  if Linalg.Matrix.cols y <> np then
    invalid_arg "Variance_estimator.estimate_streaming: width mismatch";
  if m < 2 then
    invalid_arg "Variance_estimator.estimate_streaming: need at least 2 snapshots";
  if min_pair_samples < 2 then
    invalid_arg "Variance_estimator.estimate_streaming: min_pair_samples < 2";
  Obs.Metrics.add m_pairs (np * (np + 1) / 2);
  Obs.Probe.kernel ~hist:m_phase1
    ~args:
      [ ("np", Obs.Field.Int np); ("nc", Obs.Field.Int nc); ("m", Obs.Field.Int m) ]
    "variance_estimator.estimate_streaming"
  @@ fun () ->
  let centered, has_missing = center_columns ?jobs ~np ~m y in
  let cov i j = pair_cov ~m centered has_missing i j in
  (* Accumulate G = AᵀA and b = AᵀΣ̂* over the non-empty augmented rows of
     the pair triangle, cut into blocks whose count depends only on the
     problem size (never on [jobs]). Determinism:
     - G's entries are counts of 1.0 increments — exact in floating
       point — so per-domain accumulators merge to the same bits in any
       order;
     - b sums real covariances, so each block owns a private partial
       vector and the partials are merged in block index order below.
     The same floating-point operations therefore run in the same order
     for every [jobs] value, and the result is bit-for-bit identical. *)
  let npairs = np * (np + 1) / 2 in
  let blocks = Parallel.Chunk.block_count npairs in
  let partial_b = Array.init blocks (fun _ -> Array.make nc 0.) in
  (* per-block effective-sample-size tallies (exact integers, so their
     merge below is independent of domain scheduling) *)
  let blk_nonempty = Array.make blocks 0 in
  let blk_skipped = Array.make blocks 0 in
  let blk_min_n = Array.make blocks max_int in
  let gbufs = Parallel.Pool.Buffers.create (fun () -> Array.make (nc * nc) 0.) in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let lo, hi = Parallel.Chunk.range ~blocks ~n:npairs bk in
      let b = partial_b.(bk) in
      let g = Parallel.Pool.Buffers.borrow gbufs in
      let last_i = ref (-1) in
      let ri = ref [||] in
      Parallel.Chunk.iter_pairs ~np ~lo ~hi (fun _ i j ->
          if i <> !last_i then begin
            last_i := i;
            ri := Sparse.row r i
          end;
          let row =
            if i = j then !ri else Sparse.row_product !ri (Sparse.row r j)
          in
          if Array.length row > 0 then begin
            blk_nonempty.(bk) <- blk_nonempty.(bk) + 1;
            let s, n = cov i j in
            if n < min_pair_samples then
              (* too few overlapping snapshots: this pair's covariance
                 carries no usable signal, drop its augmented row *)
              blk_skipped.(bk) <- blk_skipped.(bk) + 1
            else begin
              if n < blk_min_n.(bk) then blk_min_n.(bk) <- n;
              if s >= 0. || not drop_negative then begin
                let len = Array.length row in
                for a = 0 to len - 1 do
                  let ja = row.(a) in
                  b.(ja) <- b.(ja) +. s;
                  let base = ja * nc in
                  for c = 0 to len - 1 do
                    let k = base + row.(c) in
                    g.(k) <- g.(k) +. 1.
                  done
                done
              end
            end
          end);
      Parallel.Pool.Buffers.return gbufs g);
  let g = Array.make (nc * nc) 0. in
  List.iter
    (fun p ->
      for k = 0 to (nc * nc) - 1 do
        g.(k) <- g.(k) +. p.(k)
      done)
    (Parallel.Pool.Buffers.all gbufs);
  let b = Array.make nc 0. in
  Array.iter
    (fun p ->
      for j = 0 to nc - 1 do
        b.(j) <- b.(j) +. p.(j)
      done)
    partial_b;
  let gm = Linalg.Matrix.init nc nc (fun i j -> g.((i * nc) + j)) in
  let f = Linalg.Cholesky.factorize_regularized gm in
  let v = Linalg.Cholesky.solve_vec f b in
  let v = if clamp then Array.map (fun x -> Float.max 0. x) v else v in
  let pairs_total = Array.fold_left ( + ) 0 blk_nonempty in
  let pairs_skipped = Array.fold_left ( + ) 0 blk_skipped in
  let samples_min = Array.fold_left min max_int blk_min_n in
  let ess =
    {
      pairs_total;
      pairs_used = pairs_total - pairs_skipped;
      samples_min = (if samples_min = max_int then 0 else samples_min);
    }
  in
  Obs.Metrics.add m_pairs_skipped pairs_skipped;
  Obs.Metrics.set g_samples_min (float_of_int ess.samples_min);
  (v, ess)

let estimate_streaming ?jobs ?drop_negative ?clamp ?min_pair_samples ~r ~y () =
  fst
    (estimate_streaming_ess ?jobs ?drop_negative ?clamp ?min_pair_samples ~r ~y
       ())

let estimate_matfree_ess ?(options = default_matfree_options) ?jobs ~r ~y () =
  let np = Sparse.rows r and nc = Sparse.cols r in
  let m = Linalg.Matrix.rows y in
  if Linalg.Matrix.cols y <> np then
    invalid_arg "Variance_estimator.estimate_matfree: width mismatch";
  if m < 2 then
    invalid_arg "Variance_estimator.estimate_matfree: need at least 2 snapshots";
  if options.mf_min_pair_samples < 2 then
    invalid_arg "Variance_estimator.estimate_matfree: min_pair_samples < 2";
  Obs.Metrics.add m_pairs (np * (np + 1) / 2);
  Obs.Probe.kernel ~hist:m_phase1
    ~args:
      [ ("np", Obs.Field.Int np); ("nc", Obs.Field.Int nc); ("m", Obs.Field.Int m) ]
    "variance_estimator.estimate_matfree"
  @@ fun () ->
  let centered, has_missing = center_columns ?jobs ~np ~m y in
  let smask =
    match options.sample with
    | None -> None
    | Some (fraction, seed) -> Some (Augmented.sample_mask ~np ~fraction ~seed)
  in
  (* One tiled sweep builds the right-hand side Σ̂* and the row mask:
     a row survives iff its pair has enough overlapping snapshots, its
     covariance passes the drop-negative rule, and (when sketching) the
     sampling hash keeps it. Tiles are cut into blocks whose count
     depends only on the problem size, each flat row index belongs to
     exactly one tile, and the effective-sample-size tallies are exact
     integers merged per block — so rhs, mask and ess are identical for
     every [jobs] value, and match the streaming estimator's accounting
     pair for pair. *)
  let nrows = Augmented.row_count ~np in
  let rhs = Array.make nrows 0. in
  let mask = Bytes.make nrows '\000' in
  let csr = Sparse.to_csr r in
  let ptr = csr.Sparse.ptr and idx = csr.Sparse.idx in
  let tile = 256 in
  let ntiles = Parallel.Chunk.tile_count ~tile ~np in
  let blocks = Parallel.Chunk.block_count ~min_block:1 ntiles in
  let blk_nonempty = Array.make (max 1 blocks) 0 in
  let blk_skipped = Array.make (max 1 blocks) 0 in
  let blk_min_n = Array.make (max 1 blocks) max_int in
  Parallel.Pool.for_blocks ?jobs blocks (fun bk ->
      let tlo, thi = Parallel.Chunk.range ~blocks ~n:ntiles bk in
      for t = tlo to thi - 1 do
        let (ilo, ihi), (jlo, jhi) = Parallel.Chunk.tile_bounds ~tile ~np t in
        for i = ilo to ihi - 1 do
          let si = Bigarray.Array1.unsafe_get ptr i in
          let ei = Bigarray.Array1.unsafe_get ptr (i + 1) in
          let j0 = if jlo <= i then i else jlo in
          let k = ref (Augmented.row_index ~np ~i ~j:j0) in
          for j = j0 to jhi - 1 do
            let nonempty =
              if j = i then ei > si
              else begin
                let a = ref si in
                let b = ref (Bigarray.Array1.unsafe_get ptr j) in
                let eb = Bigarray.Array1.unsafe_get ptr (j + 1) in
                let hit = ref false in
                while (not !hit) && !a < ei && !b < eb do
                  let ca = Bigarray.Array1.unsafe_get idx !a in
                  let cb = Bigarray.Array1.unsafe_get idx !b in
                  if ca = cb then hit := true
                  else if ca < cb then incr a
                  else incr b
                done;
                !hit
              end
            in
            if nonempty then begin
              blk_nonempty.(bk) <- blk_nonempty.(bk) + 1;
              let s, n = pair_cov ~m centered has_missing i j in
              if n < options.mf_min_pair_samples then
                blk_skipped.(bk) <- blk_skipped.(bk) + 1
              else begin
                if n < blk_min_n.(bk) then blk_min_n.(bk) <- n;
                let sampled =
                  match smask with
                  | None -> true
                  | Some sm -> Bytes.unsafe_get sm !k <> '\000'
                in
                if (s >= 0. || not options.mf_drop_negative) && sampled then begin
                  rhs.(!k) <- s;
                  Bytes.unsafe_set mask !k '\001'
                end
              end
            end;
            incr k
          done
        done
      done);
  let v, stats =
    match options.mf_precond with
    | Pc_none ->
        Linalg.Lsqr.cgls ~tol:options.tol ?max_iter:options.max_iter
          ~context:
            [
              ("phase", Obs.Field.Str "phase1");
              ("precond", Obs.Field.Str "none");
            ]
          (Augmented.matfree ?jobs ~mask r)
          rhs
    | Pc_jacobi ->
        (* Jacobi right preconditioner: equalize the wildly uneven column
           counts of the augmented matrix (a backbone link appears in
           almost every pair row, a leaf link in n_p of them). The
           explicit scaled_columns + w∘z recovery is kept verbatim: it is
           the historical arithmetic, bit-for-bit. *)
        let op = Augmented.matfree ?jobs ~mask r in
        let counts = Augmented.matfree_column_counts ?jobs ~mask r in
        let w = Array.map (fun c -> 1. /. sqrt (Float.max 1. c)) counts in
        let z, stats =
          Linalg.Lsqr.cgls ~tol:options.tol ?max_iter:options.max_iter
            ~context:
              [
                ("phase", Obs.Field.Str "phase1");
                ("precond", Obs.Field.Str "jacobi");
              ]
            (Linalg.Lsqr.scaled_columns op w)
            rhs
        in
        (Array.mapi (fun e ze -> w.(e) *. ze) z, stats)
    | Pc_block_jacobi groups ->
        (* Hierarchical path: reorder the columns into doubly-bordered
           block-diagonal form (each group contiguous, border last — the
           permutation only renumbers columns, so rhs and mask are
           untouched), factor the per-group Gram blocks independently,
           and run CGLS on the permuted operator under the block-Jacobi
           right preconditioner. The solution is scattered back through
           the same permutation. *)
        let order = Array.concat (Array.to_list groups) in
        let rp = Sparse.permute_cols r order in
        let op = Augmented.matfree ?jobs ~mask rp in
        let gblocks = Augmented.gram_blocks ?jobs ~mask r ~groups in
        let blocks =
          let off = ref 0 in
          Array.map2
            (fun idx g ->
              let s = Array.length idx in
              let contiguous = Array.init s (fun t -> !off + t) in
              off := !off + s;
              (contiguous, g))
            groups gblocks
          |> Array.to_list
          |> List.filter (fun (idx, _) -> Array.length idx > 0)
          |> Array.of_list
        in
        let pc = Linalg.Precond.block_jacobi ?jobs ~cols:nc blocks in
        let zp, stats =
          Linalg.Lsqr.cgls ~tol:options.tol ?max_iter:options.max_iter
            ~precond:pc
            ~context:
              [
                ("phase", Obs.Field.Str "phase1");
                ("precond", Obs.Field.Str "block_jacobi");
              ]
            op rhs
        in
        let v = Array.make nc 0. in
        Array.iteri (fun k j -> v.(j) <- zp.(k)) order;
        (v, stats)
  in
  let v = if options.mf_clamp then Array.map (fun x -> Float.max 0. x) v else v in
  Obs.Metrics.add m_cgls_iters stats.Linalg.Conjugate_gradient.iterations;
  let pairs_total = Array.fold_left ( + ) 0 blk_nonempty in
  let pairs_skipped = Array.fold_left ( + ) 0 blk_skipped in
  let samples_min = Array.fold_left min max_int blk_min_n in
  let ess =
    {
      pairs_total;
      pairs_used = pairs_total - pairs_skipped;
      samples_min = (if samples_min = max_int then 0 else samples_min);
    }
  in
  Obs.Metrics.add m_pairs_skipped pairs_skipped;
  Obs.Metrics.set g_samples_min (float_of_int ess.samples_min);
  (v, ess, stats)

let estimate ?(options = default_options) ?jobs ~r ~y () =
  match options.method_ with
  | Normal_equations ->
      estimate_streaming ?jobs ~drop_negative:options.drop_negative
        ~clamp:options.clamp ~r ~y ()
  | Dense_qr ->
      let a = Augmented.build ?jobs r in
      let sigma_star = Covariance.sigma_star ?jobs y in
      solve ~options ?jobs ~a ~sigma_star ()
