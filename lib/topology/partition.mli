(** Stable AS partitions of reduced routing-matrix columns.

    The hierarchical solve path shards the reduced routing matrix [R] by
    autonomous system: each column (virtual link) whose physical edges
    all live inside one AS joins that AS's group, and every column
    touching an AS boundary — an inter-AS edge, or member edges from
    different ASes (possible after aliasing) — lands in the {e border}
    group. Permuting the columns group-by-group with the border last
    puts [R] (and the augmented operator built from it) in
    doubly-bordered block-diagonal form: intra-AS diagonal blocks
    coupled only through the border columns. The diagonal blocks are the
    independently factorable units of {!Linalg.Precond.block_jacobi} and
    the shardable outer loop of the ROADMAP.

    The partition is a pure function of the graph's AS labels and the
    reduction — groups ordered by ascending AS id with the border last,
    columns ascending within each group — so every consumer (solver,
    bench, tests) sees the same blocks in the same order. *)

type label =
  | As of int  (** all member edges inside this AS *)
  | Border  (** touches an AS boundary *)

type group = { label : label; cols : int array }
(** [cols] strictly increasing column indices of the reduced matrix. *)

type t

val by_as : Graph.t -> Routing.reduced -> t
(** [by_as graph red] classifies every column of [red.matrix] by the AS
    membership of its physical edges. Only non-empty groups appear; a
    single-AS topology yields one group and no border. *)

val groups : t -> group array
(** Ascending AS id, border last. Do not mutate. *)

val group_cols : t -> int array array
(** Just the column index sets of {!groups}, in the same order (fresh
    outer array, shared inner arrays). *)

val order : t -> int array
(** The concatenation of all groups' columns — a permutation of
    [0 .. cols-1] suitable for {!Linalg.Sparse.permute_cols}. Fresh
    array. *)

val cols : t -> int
(** Total number of columns partitioned. *)

val border_cols : t -> int
(** Size of the border group (0 when absent). *)

val pp : Format.formatter -> t -> unit
