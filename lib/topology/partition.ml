type label = As of int | Border

type group = { label : label; cols : int array }

type t = { groups : group array; ncols : int }

(* border sorts after every AS id *)
let label_rank = function As a -> (0, a) | Border -> (1, 0)

let compare_label l1 l2 = compare (label_rank l1) (label_rank l2)

let by_as graph (red : Routing.reduced) =
  let ncols = Linalg.Sparse.cols red.matrix in
  let classify j =
    let members = red.vlinks.(j) in
    if Array.length members = 0 then Border
    else begin
      let lbl = ref None in
      (try
         Array.iter
           (fun e ->
             if Graph.is_inter_as graph e then begin
               lbl := Some Border;
               raise Exit
             end;
             let a = (Graph.node graph (Graph.edge graph e).src).as_id in
             match !lbl with
             | None -> lbl := Some (As a)
             | Some (As a') when a' = a -> ()
             | Some _ ->
                 (* aliased edges from different ASes: boundary-coupled *)
                 lbl := Some Border;
                 raise Exit)
           members
       with Exit -> ());
      Option.get !lbl
    end
  in
  let tbl = Hashtbl.create 16 in
  for j = 0 to ncols - 1 do
    let l = classify j in
    let prev = Option.value (Hashtbl.find_opt tbl l) ~default:[] in
    Hashtbl.replace tbl l (j :: prev)
  done;
  let groups =
    Hashtbl.fold
      (fun label cols acc ->
        (* columns were consed in descending order: reverse restores
           ascending *)
        { label; cols = Array.of_list (List.rev cols) } :: acc)
      tbl []
    |> List.sort (fun g1 g2 -> compare_label g1.label g2.label)
    |> Array.of_list
  in
  { groups; ncols }

let groups p = p.groups

let group_cols p = Array.map (fun g -> g.cols) p.groups

let order p =
  let out = Array.make p.ncols 0 in
  let k = ref 0 in
  Array.iter
    (fun g ->
      Array.iter
        (fun j ->
          out.(!k) <- j;
          incr k)
        g.cols)
    p.groups;
  out

let cols p = p.ncols

let border_cols p =
  Array.fold_left
    (fun acc g ->
      match g.label with Border -> acc + Array.length g.cols | As _ -> acc)
    0 p.groups

let pp ppf p =
  Format.fprintf ppf "@[<v>partition of %d columns:" p.ncols;
  Array.iter
    (fun g ->
      (match g.label with
      | As a -> Format.fprintf ppf "@,AS %d: %d cols" a (Array.length g.cols)
      | Border -> Format.fprintf ppf "@,border: %d cols" (Array.length g.cols)))
    p.groups;
  Format.fprintf ppf "@]"
